package sqlstore

import (
	"context"
	"fmt"
	"time"

	"edgeejb/internal/memento"
	"edgeejb/internal/obs"
)

// Two-phase commit participant state. A cross-shard commit set is split
// by the edge coordinator into per-shard sub-sets; each participating
// store validates its sub-set under Prepare and HOLDS the validating
// transaction — and therefore its locks — until the coordinator's
// decision arrives as CommitPrepared or AbortPrepared. Holding the
// locks is what makes the prepared state a promise: no concurrent
// commit can invalidate a prepared read or overwrite a prepared write,
// so a yes vote stays honorable for as long as the entry lives.
//
// Presumed abort: every prepared entry carries a deadline. If the
// coordinator dies between prepare and decision, the entry's timer
// aborts the held transaction, releasing its locks — a dead coordinator
// can wedge a shard for at most the TTL. A CommitPrepared arriving
// after the timer fired finds no entry and reports a conflict, which
// the coordinator surfaces as a heuristic outcome (see shard.Router).

// preparedTx is one in-doubt transaction held between the phases.
type preparedTx struct {
	tx          *Tx
	newVersions map[memento.Key]uint64
	timer       *time.Timer
}

// WithPrepareTTL sets how long a prepared transaction may stay in doubt
// before presumed abort releases its locks. The default is 10 seconds —
// long enough for any live coordinator's second phase, short enough
// that a dead one cannot wedge a shard noticeably.
func WithPrepareTTL(d time.Duration) Option { return prepareTTLOption(d) }

type prepareTTLOption time.Duration

func (o prepareTTLOption) apply(c *config) { c.prepareTTL = time.Duration(o) }

var (
	obsPrepares       = obs.Default.Counter("sqlstore.prepares")
	obsPreparedCommit = obs.Default.Counter("sqlstore.prepared_commits")
	obsPreparedAbort  = obs.Default.Counter("sqlstore.prepared_aborts")
	obsPresumedAbort  = obs.Default.Counter("sqlstore.presumed_aborts")
)

// Prepare validates a commit sub-set exactly as ApplyCommitSet would,
// but instead of committing it parks the validating transaction under
// gid with its locks held, awaiting the coordinator's decision. A
// validation failure (or a lock wait against another in-flight
// transaction) aborts immediately and returns the conflict; nothing is
// parked. Preparing a gid that is already prepared is a conflict — the
// coordinator never reuses identifiers, so a duplicate means a retried
// frame whose original is still in doubt.
func (s *Store) Prepare(ctx context.Context, gid string, cs memento.CommitSet) error {
	ctx, sp := obs.StartSpan(ctx, "sqlstore.prepare")
	defer sp.End()
	if gid == "" {
		return fmt.Errorf("sqlstore: prepare with empty gid")
	}
	tx, err := s.Begin(ctx)
	if err != nil {
		return err
	}
	res, err := s.applyCommitSetTx(ctx, tx, cs)
	if err != nil {
		tx.Abort()
		s.stats.optFail.Add(1)
		obsOptConflicts.Inc()
		return err
	}
	s.serveCommit(1)

	s.prepMu.Lock()
	if s.prepared == nil {
		s.prepared = make(map[string]*preparedTx)
	}
	if _, dup := s.prepared[gid]; dup {
		s.prepMu.Unlock()
		tx.Abort()
		return fmt.Errorf("%w: gid %q already prepared", ErrConflict, gid)
	}
	entry := &preparedTx{tx: tx, newVersions: res.NewVersions}
	entry.timer = time.AfterFunc(s.prepareTTL, func() { s.presumeAbort(gid) })
	s.prepared[gid] = entry
	s.prepMu.Unlock()
	obsPrepares.Inc()
	return nil
}

// CommitPrepared applies a prepared transaction: the parked writes are
// installed, locks released, and the invalidation notice broadcast. If
// the gid is unknown — never prepared here, already decided, or expired
// by presumed abort — the error matches ErrConflict so the coordinator
// can tell the participant did not (and now never will) commit.
func (s *Store) CommitPrepared(ctx context.Context, gid string) (ApplyResult, error) {
	_, sp := obs.StartSpan(ctx, "sqlstore.commit_prepared")
	defer sp.End()
	entry, err := s.takePrepared(gid)
	if err != nil {
		return ApplyResult{}, err
	}
	notice, err := entry.tx.commit()
	if err != nil {
		return ApplyResult{}, err
	}
	s.broadcast(notice)
	s.stats.optOK.Add(1)
	obsOptCommits.Inc()
	obsPreparedCommit.Inc()
	return ApplyResult{TxID: entry.tx.ID(), NewVersions: entry.newVersions}, nil
}

// AbortPrepared discards a prepared transaction and releases its locks.
// Aborting an unknown gid is a no-op success: the entry may already
// have expired into the same outcome via presumed abort, and the
// coordinator's abort fan-out must be idempotent.
func (s *Store) AbortPrepared(ctx context.Context, gid string) error {
	_, sp := obs.StartSpan(ctx, "sqlstore.abort_prepared")
	defer sp.End()
	entry, err := s.takePrepared(gid)
	if err != nil {
		return nil
	}
	entry.tx.Abort()
	obsPreparedAbort.Inc()
	return nil
}

// PreparedCount returns the number of transactions currently in doubt
// (tests and the debug endpoint).
func (s *Store) PreparedCount() int {
	s.prepMu.Lock()
	defer s.prepMu.Unlock()
	return len(s.prepared)
}

// takePrepared removes and returns the entry for gid, stopping its
// presumed-abort timer.
func (s *Store) takePrepared(gid string) (*preparedTx, error) {
	s.prepMu.Lock()
	entry, ok := s.prepared[gid]
	if ok {
		delete(s.prepared, gid)
	}
	s.prepMu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: gid %q not prepared (expired or already decided)", ErrConflict, gid)
	}
	entry.timer.Stop()
	return entry, nil
}

// presumeAbort is the prepared entry's deadline firing: the coordinator
// has not decided within the TTL, so the participant unilaterally
// aborts and releases its locks.
func (s *Store) presumeAbort(gid string) {
	entry, err := s.takePrepared(gid)
	if err != nil {
		return // decided concurrently; the timer lost the race
	}
	entry.tx.Abort()
	obsPresumedAbort.Inc()
	obs.DefaultEvents.Emit(obs.Event{
		Type:   obs.EventTwoPC,
		Detail: fmt.Sprintf("presumed abort of %s after %s in doubt", gid, s.prepareTTL),
	})
}

// abortAllPrepared releases every in-doubt transaction (store close).
func (s *Store) abortAllPrepared() {
	s.prepMu.Lock()
	entries := s.prepared
	s.prepared = nil
	s.prepMu.Unlock()
	for _, e := range entries {
		e.timer.Stop()
		e.tx.Abort()
	}
}

// serveCommit models the datacenter commit processor's validation
// service time: each commit set occupies the (serial) processor for the
// configured duration before its outcome is final. Zero — the default —
// is a no-op. The shard-scaling experiment sets it so per-shard commit
// capacity reflects an N-core datacenter rather than the test host's
// core count; see EXPERIMENTS.md.
func (s *Store) serveCommit(sets int) {
	d := s.commitService
	if d <= 0 || sets <= 0 {
		return
	}
	s.serviceMu.Lock()
	time.Sleep(d * time.Duration(sets))
	s.serviceMu.Unlock()
}

// WithCommitServiceTime sets the modeled per-commit-set validation
// service time (default 0 = disabled). It is an emulation knob in the
// same family as the harness's one-way WAN delay: it stands in for the
// datacenter database's bounded commit-processing capacity, which is
// the resource sharding multiplies.
func WithCommitServiceTime(d time.Duration) Option { return commitServiceOption(d) }

type commitServiceOption time.Duration

func (o commitServiceOption) apply(c *config) { c.commitService = time.Duration(o) }

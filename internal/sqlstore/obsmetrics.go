package sqlstore

import "edgeejb/internal/obs"

// Process-wide obs mirrors of the store's transaction outcomes, summed
// across every Store in the process. The per-store Stats snapshot
// remains the harness's source of truth; these feed /metrics and
// per-phase diffs. Names are documented in OBSERVABILITY.md.
var (
	obsTxBegins     = obs.Default.Counter("sqlstore.tx_begins")
	obsTxCommits    = obs.Default.Counter("sqlstore.tx_commits")
	obsTxAborts     = obs.Default.Counter("sqlstore.tx_aborts")
	obsOptCommits   = obs.Default.Counter("sqlstore.opt_commits")
	obsOptConflicts = obs.Default.Counter("sqlstore.opt_conflicts")
	obsLockTimeouts = obs.Default.Counter("sqlstore.lock_timeouts")
)

package sqlstore

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"edgeejb/internal/memento"
)

func qtyQuery(op memento.Op, qty int64) memento.Query {
	return memento.Query{
		Table: "h",
		Where: []memento.Predicate{{Field: "qty", Op: op, Value: memento.Int(qty)}},
	}
}

func TestRangeProbeMatchesScan(t *testing.T) {
	plain := New()
	defer plain.Close()
	indexed := New()
	defer indexed.Close()
	if err := indexed.CreateIndex("h", "qty"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		row := acctRow(fmt.Sprintf("%02d", i), "a", int64(i%10))
		plain.Seed(row)
		indexed.Seed(row)
	}

	for _, op := range []memento.Op{memento.OpLt, memento.OpLe, memento.OpGt, memento.OpGe} {
		for _, qty := range []int64{-1, 0, 5, 9, 50} {
			q := qtyQuery(op, qty)
			want := queryAll(t, plain, q)
			got := queryAll(t, indexed, q)
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("%s %d: indexed range differs\nscan:  %d rows\nprobe: %d rows",
					op, qty, len(want), len(got))
			}
		}
	}
	if indexed.Stats().IndexProbes == 0 {
		t.Error("range queries never probed the index")
	}
	if plain.Stats().IndexProbes != 0 {
		t.Error("unindexed store probed an index")
	}
}

func TestRangeProbeMaintainedUnderChurn(t *testing.T) {
	s := New()
	defer s.Close()
	ctx := context.Background()
	if err := s.CreateIndex("h", "qty"); err != nil {
		t.Fatal(err)
	}
	s.Seed(acctRow("1", "a", 5), acctRow("2", "a", 7), acctRow("3", "a", 9))

	// Move row 1's qty from 5 to 20, delete row 2, insert row 4 at 1.
	tx := mustBegin(t, s)
	if err := tx.Put(ctx, acctRow("1", "a", 20)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Delete(ctx, "h", "2"); err != nil {
		t.Fatal(err)
	}
	if err := tx.Insert(ctx, acctRow("4", "a", 1)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	got := queryAll(t, s, qtyQuery(memento.OpLt, 10))
	if len(got) != 2 || got[0].Key.ID != "3" || got[1].Key.ID != "4" {
		t.Fatalf("qty<10 after churn = %v, want h/3 and h/4", got)
	}
	got = queryAll(t, s, qtyQuery(memento.OpGe, 10))
	if len(got) != 1 || got[0].Key.ID != "1" {
		t.Fatalf("qty>=10 after churn = %v, want h/1", got)
	}
}

// TestEqualityPreferredOverRange: with both an equality and a range
// predicate indexed, the planner probes equality (more selective).
func TestEqualityPreferredOverRange(t *testing.T) {
	s := New()
	defer s.Close()
	if err := s.CreateIndex("h", "acct"); err != nil {
		t.Fatal(err)
	}
	if err := s.CreateIndex("h", "qty"); err != nil {
		t.Fatal(err)
	}
	s.Seed(acctRow("1", "a", 5), acctRow("2", "b", 5), acctRow("3", "a", 9))

	q := memento.Query{
		Table: "h",
		Where: []memento.Predicate{
			{Field: "qty", Op: memento.OpGe, Value: memento.Int(0)},
			memento.Where("acct", memento.String("a")),
		},
	}
	got := queryAll(t, s, q)
	if len(got) != 2 {
		t.Fatalf("conjunction = %v", got)
	}
	// Both access paths must agree; exercised above. The preference is
	// structural (plan scans equality predicates first) — assert via the
	// planner directly.
	s.mu.RLock()
	probe := s.tables["h"].plan(q)
	s.mu.RUnlock()
	if probe == nil {
		t.Fatal("planner fell back to a scan despite two indexes")
	}
	n := 0
	probe(func(id string) { n++ })
	if n != 2 { // acct=a equality bucket has 2 rows; qty>=0 range has 3
		t.Errorf("planner candidates = %d, want 2 (equality bucket)", n)
	}
}

// Property: indexed range queries equal scans for random data and
// random churn.
func TestRangeEquivalenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		plain := New()
		defer plain.Close()
		indexed := New()
		defer indexed.Close()
		if err := indexed.CreateIndex("h", "qty"); err != nil {
			return false
		}
		ctx := context.Background()
		// Random initial rows.
		for i := 0; i < 20; i++ {
			row := acctRow(fmt.Sprintf("%02d", i), "a", rng.Int63n(8))
			plain.Seed(row)
			indexed.Seed(row)
		}
		// Random churn applied identically to both stores. Draw the
		// random choices once so the two stores stay in lockstep.
		for i := 0; i < 15; i++ {
			id := fmt.Sprintf("%02d", rng.Intn(20))
			val := rng.Int63n(8)
			kind := rng.Intn(3)
			churn := func(s *Store) {
				tx, err := s.Begin(ctx)
				if err != nil {
					return
				}
				defer tx.Abort()
				switch kind {
				case 0:
					if tx.Put(ctx, acctRow(id, "a", val)) == nil {
						_ = tx.Commit()
					}
				case 1:
					if tx.Delete(ctx, "h", id) == nil {
						_ = tx.Commit()
					}
				default:
					if tx.Insert(ctx, acctRow(id, "a", val)) == nil {
						_ = tx.Commit()
					}
				}
			}
			churn(plain)
			churn(indexed)
		}
		ops := []memento.Op{memento.OpLt, memento.OpLe, memento.OpGt, memento.OpGe}
		op := ops[rng.Intn(len(ops))]
		qty := rng.Int63n(10)
		want := queryAllErrless(plain, qtyQuery(op, qty))
		got := queryAllErrless(indexed, qtyQuery(op, qty))
		return reflect.DeepEqual(want, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func queryAllErrless(s *Store, q memento.Query) []memento.Memento {
	tx, err := s.Begin(context.Background())
	if err != nil {
		return nil
	}
	defer tx.Abort()
	out, err := tx.Query(context.Background(), q)
	if err != nil {
		return nil
	}
	return out
}

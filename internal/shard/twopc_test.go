package shard

import (
	"context"
	"testing"
	"time"

	"edgeejb/internal/memento"
	"edgeejb/internal/sqlstore"
)

// TestTwoPhaseCoordinatorCrashRecovery simulates an edge coordinator
// dying between prepare and decision: both participants hold prepared
// transactions that nobody will ever decide. The participants'
// presumed-abort TTL must fire, release the locks, and leave both
// shards fully serviceable for the next coordinator.
func TestTwoPhaseCoordinatorCrashRecovery(t *testing.T) {
	r := newRig(t, 2, nil, nil, sqlstore.WithPrepareTTL(50*time.Millisecond))
	ctx := context.Background()
	idA := r.idOnShard(t, 0, "a")
	idB := r.idOnShard(t, 1, "b")
	r.seed(rmem(idA, 0, 1))
	r.seed(rmem(idB, 0, 1))

	// Phase one succeeded on both shards; then the coordinator vanished.
	for i, id := range []string{idA, idB} {
		if err := r.stores[i].Prepare(ctx, "dead-coordinator-1", memento.CommitSet{
			Writes: []memento.Memento{rmem(id, 1, 2)},
		}); err != nil {
			t.Fatal(err)
		}
	}

	// Presumed abort unwedges both participants without any message.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if r.stores[0].PreparedCount() == 0 && r.stores[1].PreparedCount() == 0 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	for i, s := range r.stores {
		if n := s.PreparedCount(); n != 0 {
			t.Fatalf("shard %d still holds %d prepared txs after TTL", i, n)
		}
	}

	// Nothing was installed, and a new coordinator's 2PC over the same
	// rows goes through cleanly — the in-doubt locks are gone.
	res, err := r.router.ApplyCommitSet(ctx, memento.CommitSet{
		Writes: []memento.Memento{rmem(idA, 1, 3), rmem(idB, 1, 3)},
	})
	if err != nil {
		t.Fatalf("2PC after presumed abort: %v", err)
	}
	if len(res.TxIDs) != 2 {
		t.Fatalf("TxIDs = %v, want both participants", res.TxIDs)
	}
}

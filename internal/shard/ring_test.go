package shard

import (
	"testing"

	"edgeejb/internal/memento"
)

func key(id string) memento.Key { return memento.Key{Table: "t", ID: id} }

func TestRingDeterministic(t *testing.T) {
	r := NewRing(4)
	for _, id := range []string{"a", "b", "c", "longer-key-0042"} {
		first := r.Of(key(id))
		if first < 0 || first >= 4 {
			t.Fatalf("Of(%q) = %d, out of range", id, first)
		}
		for i := 0; i < 10; i++ {
			if got := r.Of(key(id)); got != first {
				t.Fatalf("Of(%q) flapped: %d then %d", id, first, got)
			}
		}
	}
	if NewRing(0).Shards() != 1 {
		t.Error("n < 1 must clamp to 1")
	}
}

func TestRingPlacementCoLocation(t *testing.T) {
	r := NewRing(8, WithPlacement(func(k memento.Key) string { return "user/u1" }))
	a, b := r.Of(key("account")), r.Of(key("holding"))
	if a != b {
		t.Fatalf("equal placements landed on shards %d and %d", a, b)
	}
	if got := r.OfPlacement("user/u1"); got != a {
		t.Fatalf("OfPlacement disagrees with Of: %d vs %d", got, a)
	}
}

func TestRingSplit(t *testing.T) {
	r := NewRing(4)
	cs := memento.CommitSet{
		Reads: []memento.ReadProof{
			{Key: key("r1"), Version: 1},
			{Key: key("r2"), Version: 2},
		},
		Writes:  []memento.Memento{{Key: key("w1"), Version: 1}},
		Creates: []memento.Memento{{Key: key("c1")}},
		Removes: []memento.ReadProof{{Key: key("d1"), Version: 3}},
	}
	split := r.Split(cs)

	// Every element lands in its owner's subset, and nothing is lost.
	total := memento.CommitSet{}
	for s, sub := range split {
		for _, p := range sub.Reads {
			if r.Of(p.Key) != s {
				t.Errorf("read %v filed under shard %d, owner %d", p.Key, s, r.Of(p.Key))
			}
		}
		total.Reads = append(total.Reads, sub.Reads...)
		total.Writes = append(total.Writes, sub.Writes...)
		total.Creates = append(total.Creates, sub.Creates...)
		total.Removes = append(total.Removes, sub.Removes...)
	}
	if total.Size() != cs.Size() {
		t.Fatalf("split dropped elements: %d of %d", total.Size(), cs.Size())
	}

	// Mutation shards are exactly the owners of w1, c1, d1.
	wantMut := map[int]bool{r.Of(key("w1")): true, r.Of(key("c1")): true, r.Of(key("d1")): true}
	got := MutationShards(split)
	if len(got) != len(wantMut) {
		t.Fatalf("MutationShards = %v, want owners of w1/c1/d1 %v", got, wantMut)
	}
	for _, s := range got {
		if !wantMut[s] {
			t.Errorf("shard %d reported mutating but owns none", s)
		}
	}
}

func TestRingSplitSingleShardFastReturn(t *testing.T) {
	r := NewRing(1)
	cs := memento.CommitSet{Writes: []memento.Memento{{Key: key("w")}}}
	split := r.Split(cs)
	if len(split) != 1 || len(split[0].Writes) != 1 {
		t.Fatalf("n=1 split = %v, want everything under shard 0", split)
	}
}

package shard

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"edgeejb/internal/memento"
	"edgeejb/internal/sqlstore"
	"edgeejb/internal/storeapi"
)

func rmem(id string, version uint64, v int64) memento.Memento {
	return memento.Memento{
		Key:     memento.Key{Table: "t", ID: id},
		Version: version,
		Fields:  memento.Fields{"v": memento.Int(v)},
	}
}

// rig is a router over n in-process stores, each with a disjoint
// transaction-ID base exactly as the sharded harness wires it.
type rig struct {
	ring   *Ring
	stores []*sqlstore.Store
	router *Router
}

func newRig(t *testing.T, n int, ringOpts []RingOption, routerOpts []RouterOption, storeOpts ...sqlstore.Option) *rig {
	t.Helper()
	ring := NewRing(n, ringOpts...)
	stores := make([]*sqlstore.Store, n)
	conns := make([]storeapi.Conn, n)
	for i := range stores {
		opts := append([]sqlstore.Option{sqlstore.WithTxIDBase(uint64(i) << 40)}, storeOpts...)
		stores[i] = sqlstore.New(opts...)
		conns[i] = storeapi.Local(stores[i])
	}
	t.Cleanup(func() {
		for _, s := range stores {
			s.Close()
		}
	})
	router, err := NewRouter(ring, conns, routerOpts...)
	if err != nil {
		t.Fatal(err)
	}
	return &rig{ring: ring, stores: stores, router: router}
}

// seed installs a row in its owning shard's store and returns the owner.
func (r *rig) seed(m memento.Memento) int {
	s := r.ring.Of(m.Key)
	r.stores[s].Seed(m)
	return s
}

// idOnShard finds a key the ring places on the wanted shard.
func (r *rig) idOnShard(t *testing.T, want int, prefix string) string {
	t.Helper()
	for i := 0; i < 10_000; i++ {
		id := fmt.Sprintf("%s%d", prefix, i)
		if r.ring.Of(memento.Key{Table: "t", ID: id}) == want {
			return id
		}
	}
	t.Fatalf("no id found on shard %d", want)
	return ""
}

func TestRouterAutoGetRoutes(t *testing.T) {
	r := newRig(t, 3, nil, nil)
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		id := r.idOnShard(t, i, "row")
		r.seed(rmem(id, 0, int64(i)))
		got, err := r.router.AutoGet(ctx, "t", id)
		if err != nil {
			t.Fatalf("AutoGet(%s): %v", id, err)
		}
		if got.Mem.Fields["v"].Int != int64(i) {
			t.Errorf("AutoGet(%s) = %v, want v=%d", id, got.Mem.Fields, i)
		}
	}
	// The row exists only on its owner: a misroute would be ErrNotFound.
}

func TestRouterFastPathSingleShard(t *testing.T) {
	r := newRig(t, 3, nil, nil)
	ctx := context.Background()
	id := r.idOnShard(t, 1, "w")
	r.seed(rmem(id, 0, 1))

	res, err := r.router.ApplyCommitSet(ctx, memento.CommitSet{
		Writes: []memento.Memento{rmem(id, 1, 2)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TxID == 0 {
		t.Error("missing TxID")
	}
	if len(res.TxIDs) != 0 {
		t.Errorf("fast path filled TxIDs (%v); must stay the unsharded shape", res.TxIDs)
	}
	if v, _ := r.stores[1].CurrentVersion(memento.Key{Table: "t", ID: id}); v != 2 {
		t.Errorf("owner version = %d, want 2", v)
	}
	// No prepared state anywhere: this was not 2PC.
	for i, s := range r.stores {
		if n := s.PreparedCount(); n != 0 {
			t.Errorf("shard %d holds %d prepared txs after fast path", i, n)
		}
	}
}

func TestRouterTwoPhaseCommit(t *testing.T) {
	r := newRig(t, 2, nil, nil)
	ctx := context.Background()
	idA := r.idOnShard(t, 0, "a")
	idB := r.idOnShard(t, 1, "b")
	r.seed(rmem(idA, 0, 1))
	r.seed(rmem(idB, 0, 1))

	res, err := r.router.ApplyCommitSet(ctx, memento.CommitSet{
		Writes: []memento.Memento{rmem(idA, 1, 2), rmem(idB, 1, 2)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.TxIDs) != 2 {
		t.Fatalf("TxIDs = %v, want one per participant", res.TxIDs)
	}
	// Disjoint bases prove both shards really committed their own tx.
	var seen [2]bool
	for _, id := range res.TxIDs {
		seen[int(id>>40)] = true
	}
	if !seen[0] || !seen[1] {
		t.Errorf("TxIDs %v don't cover both shards", res.TxIDs)
	}
	for i, id := range []string{idA, idB} {
		if v, _ := r.stores[i].CurrentVersion(memento.Key{Table: "t", ID: id}); v != 2 {
			t.Errorf("shard %d version = %d, want 2", i, v)
		}
	}
	if res.NewVersions[memento.Key{Table: "t", ID: idA}] != 2 ||
		res.NewVersions[memento.Key{Table: "t", ID: idB}] != 2 {
		t.Errorf("merged NewVersions = %v", res.NewVersions)
	}
}

// TestRouterTwoPhaseConflictAborts proves one participant's no vote
// aborts the whole write set — the other shard's rows stay untouched —
// and that the surfaced error carries the cross-shard winner's
// attributed transaction ID.
func TestRouterTwoPhaseConflictAborts(t *testing.T) {
	r := newRig(t, 2, nil, nil)
	ctx := context.Background()
	idA := r.idOnShard(t, 0, "a")
	idB := r.idOnShard(t, 1, "b")
	r.seed(rmem(idA, 0, 1))
	r.seed(rmem(idB, 0, 1))

	// A winner commits on shard 1 first, bumping idB to version 2.
	if _, err := r.stores[1].ApplyCommitSet(ctx, memento.CommitSet{
		Writes: []memento.Memento{rmem(idB, 1, 99)},
	}); err != nil {
		t.Fatal(err)
	}

	// The loser's cross-shard set still carries idB@1: shard 1 votes no.
	_, err := r.router.ApplyCommitSet(ctx, memento.CommitSet{
		Writes: []memento.Memento{rmem(idA, 1, 2), rmem(idB, 1, 2)},
	})
	if !errors.Is(err, sqlstore.ErrConflict) {
		t.Fatalf("got %v, want ErrConflict", err)
	}
	var ce *sqlstore.ConflictError
	if !errors.As(err, &ce) {
		t.Fatalf("conflict lost its attribution crossing the router: %v", err)
	}
	if ce.WinnerTx>>40 != 1 {
		t.Errorf("winner tx %d not attributed to shard 1", ce.WinnerTx)
	}
	// Shard 0 prepared yes but must have aborted: idA unchanged, no
	// prepared residue, and a retry at the current versions succeeds.
	if v, _ := r.stores[0].CurrentVersion(memento.Key{Table: "t", ID: idA}); v != 1 {
		t.Errorf("shard 0 version = %d after abort, want 1", v)
	}
	for i, s := range r.stores {
		if n := s.PreparedCount(); n != 0 {
			t.Errorf("shard %d holds %d prepared txs after abort", i, n)
		}
	}
	if _, err := r.router.ApplyCommitSet(ctx, memento.CommitSet{
		Writes: []memento.Memento{rmem(idA, 1, 2), rmem(idB, 2, 3)},
	}); err != nil {
		t.Fatalf("retry after abort: %v", err)
	}
}

func TestRouterReadOnlyCrossShardSkipsTwoPhase(t *testing.T) {
	r := newRig(t, 2, nil, nil)
	ctx := context.Background()
	idA := r.idOnShard(t, 0, "a")
	idB := r.idOnShard(t, 1, "b")
	r.seed(rmem(idA, 0, 1))
	r.seed(rmem(idB, 0, 1))

	res, err := r.router.ApplyCommitSet(ctx, memento.CommitSet{
		Reads: []memento.ReadProof{
			{Key: memento.Key{Table: "t", ID: idA}, Version: 1},
			{Key: memento.Key{Table: "t", ID: idB}, Version: 1},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.TxIDs) != 2 {
		t.Errorf("TxIDs = %v, want one per validating shard", res.TxIDs)
	}
	// A stale proof on either shard still fails the whole set.
	if _, err := r.router.ApplyCommitSet(ctx, memento.CommitSet{
		Reads: []memento.ReadProof{
			{Key: memento.Key{Table: "t", ID: idA}, Version: 1},
			{Key: memento.Key{Table: "t", ID: idB}, Version: 7},
		},
	}); !errors.Is(err, sqlstore.ErrConflict) {
		t.Fatalf("stale cross-shard read: got %v, want ErrConflict", err)
	}
}

func TestRouterScatterQueryMerges(t *testing.T) {
	r := newRig(t, 3, nil, nil)
	ctx := context.Background()
	// Ten rows spread over the shards by the default placement.
	for i := 0; i < 10; i++ {
		r.seed(rmem(fmt.Sprintf("q%d", i), 0, int64(i)))
	}
	q := memento.Query{Table: "t", OrderBy: "v", Desc: true, Limit: 4}
	res, err := r.router.AutoQuery(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Mems) != 4 {
		t.Fatalf("got %d rows, want the limit 4", len(res.Mems))
	}
	// Global order despite per-shard partials: top four values are 9..6.
	for i, m := range res.Mems {
		if want := int64(9 - i); m.Fields["v"].Int != want {
			t.Errorf("row %d: v = %d, want %d", i, m.Fields["v"].Int, want)
		}
	}
}

func TestRouterQueryAffinityPins(t *testing.T) {
	// Affinity pins every "t" query to the placement "pin". Rows on other
	// shards must not be consulted.
	aff := func(q memento.Query) (string, bool) { return "pin", true }
	r := newRig(t, 3, nil, []RouterOption{WithQueryAffinity(aff)})
	ctx := context.Background()
	pinned := r.ring.OfPlacement("pin")
	r.stores[pinned].Seed(rmem("on-pin", 0, 1))
	r.stores[(pinned+1)%3].Seed(rmem("elsewhere", 0, 2))

	res, err := r.router.AutoQuery(ctx, memento.Query{Table: "t"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Mems) != 1 || res.Mems[0].Key.ID != "on-pin" {
		t.Fatalf("pinned query returned %v, want just on-pin", res.Mems)
	}
}

func TestRouterSubscribeMergesAllShards(t *testing.T) {
	r := newRig(t, 2, nil, nil)
	ctx := context.Background()
	ch, cancel, err := r.router.Subscribe(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()

	idA := r.idOnShard(t, 0, "a")
	idB := r.idOnShard(t, 1, "b")
	for i, id := range []string{idA, idB} {
		if _, err := r.stores[i].ApplyCommitSet(ctx, memento.CommitSet{
			Creates: []memento.Memento{rmem(id, 0, 1)},
		}); err != nil {
			t.Fatal(err)
		}
	}

	want := map[uint64]bool{0: true, 1: true}
	deadline := time.After(5 * time.Second)
	for len(want) > 0 {
		select {
		case n, ok := <-ch:
			if !ok {
				t.Fatal("merged stream closed early")
			}
			delete(want, n.TxID>>40)
		case <-deadline:
			t.Fatalf("missing notices from shards %v", want)
		}
	}
}

func TestRouterTxnStaysSingleShard(t *testing.T) {
	r := newRig(t, 2, nil, nil)
	ctx := context.Background()
	idA := r.idOnShard(t, 0, "a")
	idB := r.idOnShard(t, 1, "b")
	r.seed(rmem(idA, 0, 1))
	r.seed(rmem(idB, 0, 1))

	txn, err := r.router.Begin(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := txn.Get(ctx, "t", idA); err != nil {
		t.Fatal(err)
	}
	if _, err := txn.Get(ctx, "t", idB); !errors.Is(err, errCrossShardTxn) {
		t.Fatalf("cross-shard statement: got %v, want errCrossShardTxn", err)
	}
	if err := txn.Abort(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestRouterRejectsMismatchedConns(t *testing.T) {
	s := sqlstore.New()
	defer s.Close()
	_, err := NewRouter(NewRing(2), []storeapi.Conn{storeapi.Local(s)})
	if err == nil {
		t.Fatal("router accepted 1 conn for 2 shards")
	}
}

package shard

import "edgeejb/internal/obs"

// Shard-router metrics. Names are documented in OBSERVABILITY.md (CI
// cross-checks the registrations against the docs).
var (
	// obsShardCommits counts committed commit sets per shard — the curve
	// that shows whether load actually spreads across the ring.
	obsShardCommits = obs.Default.LabeledCounter("shard.commits", "shard")
	// obsFastpathCommits counts single-shard commits that took the
	// unchanged one-frame fast path.
	obsFastpathCommits = obs.Default.Counter("shard.fastpath_commits")
	// obsReadonlyCommits counts multi-shard read-only sets validated by
	// per-shard scatter (no 2PC, no global serialization point).
	obsReadonlyCommits = obs.Default.Counter("shard.readonly_commits")
	// obsTwoPCCommits / obsTwoPCAborts count full two-phase outcomes; the
	// 2PC fraction of a run is 2pc_commits / (fastpath + readonly + 2pc).
	obsTwoPCCommits = obs.Default.Counter("shard.2pc_commits")
	obsTwoPCAborts  = obs.Default.Counter("shard.2pc_aborts")
	// obsTwoPCHeuristics counts mixed second-phase outcomes: every
	// participant voted yes but at least one commit-prepared then failed
	// (e.g. its presumed-abort TTL expired first). See DESIGN.md's
	// recovery table.
	obsTwoPCHeuristics = obs.Default.Counter("shard.2pc_heuristics")
	// obsScatterQueries counts finder queries fanned out to every shard
	// (no placement affinity pruned them to one).
	obsScatterQueries = obs.Default.Counter("shard.scatter_queries")
	// obsPrepareLatency records each participant's prepare round trip.
	obsPrepareLatency = obs.Default.Histogram("shard.prepare_latency")
	// obsParticipants records how many shards each commit set touched —
	// the placement function's report card (1 = fast path).
	obsParticipants = obs.Default.Histogram("shard.participants")
)

// Package shard partitions the datacenter tier by bean primary key.
//
// The paper's split-servers architecture (ES/RBES) already moved the
// commit unit to a whole optimistic commit set shipped edge→datacenter
// in one frame. That unit is exactly what a partitioned datacenter can
// route: this package adds the deterministic key→shard map (Ring) and
// an edge-side storeapi.Conn (Router) that spreads reads, finders and
// commit sets across N independent backendd/dbserverd pairs, each an
// unmodified copy of the single-shard datacenter tier.
//
// The paper never shards — every configuration funnels commits through
// one database server, which is the last serial resource once the
// read path is cached at the edges and the wire cost is one frame per
// commit. Sharding multiplies that resource. The design keeps the
// paper's commit semantics per shard (optimistic validation, group
// commit, conflict attribution) and pays coordination only when a
// commit set actually spans shards:
//
//   - one participant → the existing one-frame fast path, unchanged;
//   - several participants, read-only → per-shard scatter validation
//     (each shard proves its own read subset; no 2PC);
//   - several participants with mutations → edge-coordinated
//     two-phase commit with presumed abort (see Router and
//     sqlstore's prepare.go).
//
// Placement decides how often the expensive case happens. The Ring
// hashes a placement string, not the raw key, so a domain package can
// co-locate the rows one interaction touches (trade.ShardPlacement
// pins each user's account, profile, registry and holdings to one
// shard); with that, the default Trade2 mix keeps the fast path
// dominant and 2PC is paid only for genuinely cross-user/cross-shard
// sets such as a buy whose quote lives elsewhere.
package shard

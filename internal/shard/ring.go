package shard

import (
	"edgeejb/internal/memento"
)

// Ring is the deterministic key→shard map shared by every tier: the
// edge routers, the per-shard back-end servers, and the populate logic
// that seeds each shard's database with exactly the rows it owns. For
// a fixed shard count the mapping is a pure function of the placement
// string, so any two processes built from the same source agree on
// every key's owner without coordination.
//
// Resizing is out of scope: a deployment picks its shard count up
// front and every process is started with the same -shards value. (A
// consistent-hash ring with virtual nodes would make resizes cheap;
// nothing in the Router depends on the mapping beyond determinism, so
// that is a drop-in change later.)
type Ring struct {
	n     int
	place func(memento.Key) string
}

// RingOption configures a Ring.
type RingOption func(*Ring)

// WithPlacement overrides how a key maps to its placement string — the
// unit of co-location. Keys with equal placement strings always land on
// the same shard. The default places every key by "table/id", which
// spreads rows uniformly but gives no co-location; domain packages can
// do better (trade.ShardPlacement groups each user's account, profile,
// registry and holdings so the common write sets stay single-shard).
func WithPlacement(place func(memento.Key) string) RingOption {
	return func(r *Ring) { r.place = place }
}

// NewRing builds a ring over n shards (n >= 1).
func NewRing(n int, opts ...RingOption) *Ring {
	if n < 1 {
		n = 1
	}
	r := &Ring{n: n, place: defaultPlacement}
	for _, o := range opts {
		o(r)
	}
	return r
}

func defaultPlacement(k memento.Key) string { return k.Table + "/" + k.ID }

// Shards returns the shard count.
func (r *Ring) Shards() int { return r.n }

// Of returns the shard owning a key.
func (r *Ring) Of(key memento.Key) int { return r.OfPlacement(r.place(key)) }

// OfPlacement returns the shard owning a placement string (FNV-1a over
// the string, mod shard count). Exposed so query routing can reuse the
// exact same hash when a finder's equality predicate pins a placement.
func (r *Ring) OfPlacement(p string) int {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(p); i++ {
		h ^= uint32(p[i])
		h *= prime32
	}
	return int(h % uint32(r.n))
}

// Split partitions a commit set by owning shard: every read proof,
// write, create and remove lands in its owner's sub-set. The map has
// one entry per participating shard; a single-entry map is the
// single-shard fast path, anything larger needs two-phase commit.
func (r *Ring) Split(cs memento.CommitSet) map[int]memento.CommitSet {
	if r.n == 1 {
		return map[int]memento.CommitSet{0: cs}
	}
	out := make(map[int]memento.CommitSet)
	for _, p := range cs.Reads {
		s := r.Of(p.Key)
		sub := out[s]
		sub.Reads = append(sub.Reads, p)
		out[s] = sub
	}
	for _, w := range cs.Writes {
		s := r.Of(w.Key)
		sub := out[s]
		sub.Writes = append(sub.Writes, w)
		out[s] = sub
	}
	for _, c := range cs.Creates {
		s := r.Of(c.Key)
		sub := out[s]
		sub.Creates = append(sub.Creates, c)
		out[s] = sub
	}
	for _, p := range cs.Removes {
		s := r.Of(p.Key)
		sub := out[s]
		sub.Removes = append(sub.Removes, p)
		out[s] = sub
	}
	return out
}

// MutationShards returns the shards owning at least one mutation
// (write, create or remove) in a split. Read-only participants are the
// difference between the split's key set and this set.
func MutationShards(split map[int]memento.CommitSet) []int {
	var out []int
	for s, sub := range split {
		if sub.Mutations() > 0 {
			out = append(out, s)
		}
	}
	return out
}

package shard

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"edgeejb/internal/memento"
	"edgeejb/internal/obs"
	"edgeejb/internal/sqlstore"
	"edgeejb/internal/storeapi"
)

// QueryAffinity reports the placement string a finder query is pinned
// to, when its predicates determine one (e.g. an equality on the
// sharding field). A pinned query runs on a single shard; anything else
// scatters to every shard and merges.
type QueryAffinity func(q memento.Query) (string, bool)

// Router is the edge-side face of the sharded datacenter tier: a
// storeapi.Conn over N per-shard connections that routes every key
// access to its owner, scatter/gathers finders, and applies commit
// sets by the decision rule in the package comment — fast path for one
// participant, per-shard validation for read-only multi-shard sets,
// edge-coordinated two-phase commit when mutations span shards.
type Router struct {
	ring  *Ring
	conns []storeapi.Conn
	aff   QueryAffinity

	// id namespaces this coordinator's global transaction identifiers;
	// gidSeq makes them unique within it.
	id     string
	gidSeq atomic.Uint64
}

var _ storeapi.Conn = (*Router)(nil)

// RouterOption configures a Router.
type RouterOption func(*Router)

// WithQueryAffinity installs the finder-pruning hook (trade supplies
// one pinning holdings-by-account to the account's shard).
func WithQueryAffinity(aff QueryAffinity) RouterOption {
	return func(r *Router) { r.aff = aff }
}

// NewRouter builds a router over one connection per shard; conns[i]
// must talk to the shard the ring numbers i.
func NewRouter(ring *Ring, conns []storeapi.Conn, opts ...RouterOption) (*Router, error) {
	if len(conns) != ring.Shards() {
		return nil, fmt.Errorf("shard: %d conns for %d shards", len(conns), ring.Shards())
	}
	var buf [8]byte
	if _, err := rand.Read(buf[:]); err != nil {
		return nil, fmt.Errorf("shard: coordinator id: %w", err)
	}
	r := &Router{ring: ring, conns: conns, id: hex.EncodeToString(buf[:])}
	for _, o := range opts {
		o(r)
	}
	return r, nil
}

// Ring returns the router's key→shard map.
func (r *Router) Ring() *Ring { return r.ring }

func (r *Router) nextGid() string {
	return r.id + "-" + strconv.FormatUint(r.gidSeq.Add(1), 10)
}

// laneOf labels the span lane for one participant shard. Critical-path
// attribution groups commit-path time per lane, so a sharded run's
// table shows which shard the blocking time sat on.
func laneOf(s int) string { return "shard" + strconv.Itoa(s) }

// AutoGet routes the read to the key's owning shard: one round trip,
// exactly as against an unsharded tier.
func (r *Router) AutoGet(ctx context.Context, table, id string) (storeapi.GetResult, error) {
	return r.conns[r.ring.Of(memento.Key{Table: table, ID: id})].AutoGet(ctx, table, id)
}

// AutoQuery runs a finder. A query the affinity hook pins to one
// placement runs on that shard alone; otherwise it scatters to every
// shard in parallel and merges the partial results under the query's
// own order and limit. The merged footprint is the union of the
// per-shard footprints, so finder-cache invalidation keys on the same
// predicate descriptor regardless of how many shards served it.
func (r *Router) AutoQuery(ctx context.Context, q memento.Query) (storeapi.QueryResult, error) {
	if r.ring.Shards() == 1 {
		return r.conns[0].AutoQuery(ctx, q)
	}
	if r.aff != nil {
		if p, ok := r.aff(q); ok {
			return r.conns[r.ring.OfPlacement(p)].AutoQuery(ctx, q)
		}
	}
	ctx, sp := obs.StartSpan(ctx, "shard.scatter")
	defer sp.End()
	obsScatterQueries.Inc()
	results := make([]storeapi.QueryResult, len(r.conns))
	errs := make([]error, len(r.conns))
	var wg sync.WaitGroup
	for i := range r.conns {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = r.conns[i].AutoQuery(ctx, q)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return storeapi.QueryResult{}, err
		}
	}
	var out storeapi.QueryResult
	for i := range results {
		out.Mems = append(out.Mems, results[i].Mems...)
		out.FP.Merge(results[i].FP)
	}
	q.Sort(out.Mems)
	out.Mems = q.Cap(out.Mems)
	return out, nil
}

// ApplyCommitSet applies a whole optimistic commit set under the
// decision rule:
//
//   - every element owned by one shard → that shard's one-frame fast
//     path, byte-for-byte the unsharded protocol;
//   - several owners but no mutations → each shard validates its read
//     subset in parallel (per-shard serializability is enough: a
//     read-only set observes nothing across shards that a write could
//     have torn);
//   - several owners with mutations → two-phase commit across ALL
//     participants, including read-only ones, whose prepared shared
//     locks keep the cross-shard read proofs stable through the
//     decision.
func (r *Router) ApplyCommitSet(ctx context.Context, cs memento.CommitSet) (sqlstore.ApplyResult, error) {
	split := r.ring.Split(cs)
	obsParticipants.Observe(time.Duration(len(split)))
	if len(split) == 1 {
		for s, sub := range split {
			actx, asp := obs.StartSpan(obs.WithLane(ctx, laneOf(s)), "shard.apply")
			res, err := r.conns[s].ApplyCommitSet(actx, sub)
			asp.End()
			if err != nil {
				return sqlstore.ApplyResult{}, err
			}
			obsFastpathCommits.Inc()
			obsShardCommits.With(strconv.Itoa(s)).Inc()
			return res, nil
		}
	}
	if len(MutationShards(split)) == 0 {
		return r.validateScatter(ctx, split)
	}
	return r.twoPhase(ctx, split)
}

// validateScatter proves a read-only multi-shard set by running each
// shard's subset through its ordinary apply path in parallel. No
// global coordination: each shard serializes its own subset against
// its own commits, which suffices because the set mutates nothing.
func (r *Router) validateScatter(ctx context.Context, split map[int]memento.CommitSet) (sqlstore.ApplyResult, error) {
	ctx, sp := obs.StartSpan(ctx, "shard.validate")
	defer sp.End()
	type part struct {
		shard int
		res   sqlstore.ApplyResult
		err   error
	}
	parts := make([]part, 0, len(split))
	for s := range split {
		parts = append(parts, part{shard: s})
	}
	var wg sync.WaitGroup
	for i := range parts {
		wg.Add(1)
		go func(p *part) {
			defer wg.Done()
			pctx, psp := obs.StartSpan(obs.WithLane(ctx, laneOf(p.shard)), "shard.apply")
			p.res, p.err = r.conns[p.shard].ApplyCommitSet(pctx, split[p.shard])
			psp.End()
		}(&parts[i])
	}
	wg.Wait()
	var out sqlstore.ApplyResult
	for i := range parts {
		if parts[i].err != nil {
			return sqlstore.ApplyResult{}, parts[i].err
		}
		if out.TxID == 0 {
			out.TxID = parts[i].res.TxID
		}
		out.TxIDs = append(out.TxIDs, parts[i].res.TxID)
	}
	obsReadonlyCommits.Inc()
	for i := range parts {
		obsShardCommits.With(strconv.Itoa(parts[i].shard)).Inc()
	}
	return out, nil
}

// twoPhase runs edge-coordinated 2PC: parallel prepares, then parallel
// commit-or-abort. Any no vote aborts the whole set and surfaces the
// refusing shard's error — an attributed conflict crosses shards
// intact, so the loser learns the winner even when they committed on
// different shards. A commit failure after unanimous yes votes is a
// heuristic outcome: some participants committed, the failing one
// presumably aborted (its TTL fired). It is counted, evented, and
// surfaced as an error; see DESIGN.md's recovery table.
func (r *Router) twoPhase(ctx context.Context, split map[int]memento.CommitSet) (sqlstore.ApplyResult, error) {
	ctx, sp := obs.StartSpan(ctx, "shard.2pc")
	defer sp.End()
	gid := r.nextGid()

	type part struct {
		shard int
		prep  storeapi.Preparer
		res   sqlstore.ApplyResult
		err   error
	}
	parts := make([]part, 0, len(split))
	for s := range split {
		p, ok := r.conns[s].(storeapi.Preparer)
		if !ok {
			obsTwoPCAborts.Inc()
			return sqlstore.ApplyResult{}, fmt.Errorf("shard: shard %d connection cannot prepare (peer predates 2PC): %w", s, sqlstore.ErrConflict)
		}
		parts = append(parts, part{shard: s, prep: p})
	}

	var wg sync.WaitGroup
	for i := range parts {
		wg.Add(1)
		go func(p *part) {
			defer wg.Done()
			pctx, psp := obs.StartSpan(obs.WithLane(ctx, laneOf(p.shard)), "shard.prepare")
			start := time.Now()
			p.err = p.prep.Prepare(pctx, gid, split[p.shard])
			obsPrepareLatency.Observe(time.Since(start))
			psp.End()
		}(&parts[i])
	}
	wg.Wait()

	var veto error
	for i := range parts {
		if parts[i].err == nil {
			continue
		}
		var ce *sqlstore.ConflictError
		if veto == nil || errors.As(parts[i].err, &ce) {
			veto = parts[i].err
		}
	}
	if veto != nil {
		// Abort everyone that may hold a prepared entry. Detached from the
		// caller's context: the decision must reach the participants even
		// if the caller gives up, and aborting an unknown gid is a no-op.
		actx := context.WithoutCancel(ctx)
		for i := range parts {
			if parts[i].err != nil {
				continue
			}
			wg.Add(1)
			go func(p *part) {
				defer wg.Done()
				_ = p.prep.AbortPrepared(actx, gid)
			}(&parts[i])
		}
		wg.Wait()
		obsTwoPCAborts.Inc()
		return sqlstore.ApplyResult{}, veto
	}

	// Unanimous yes: the decision is commit. Detached from the caller's
	// context for the same reason as the abort fan-out.
	cctx := context.WithoutCancel(ctx)
	for i := range parts {
		wg.Add(1)
		go func(p *part) {
			defer wg.Done()
			pctx, psp := obs.StartSpan(obs.WithLane(cctx, laneOf(p.shard)), "shard.commit_prepared")
			p.res, p.err = p.prep.CommitPrepared(pctx, gid)
			psp.End()
		}(&parts[i])
	}
	wg.Wait()

	var out sqlstore.ApplyResult
	for i := range parts {
		if parts[i].err != nil {
			obsTwoPCHeuristics.Inc()
			obs.DefaultEvents.Emit(obs.Event{
				Type:   obs.EventTwoPC,
				Detail: fmt.Sprintf("heuristic outcome for %s: shard %d failed commit-prepared: %v", gid, parts[i].shard, parts[i].err),
			})
			return sqlstore.ApplyResult{}, fmt.Errorf("shard: heuristic 2PC outcome on shard %d: %w", parts[i].shard, parts[i].err)
		}
		if out.TxID == 0 {
			out.TxID = parts[i].res.TxID
		}
		out.TxIDs = append(out.TxIDs, parts[i].res.TxID)
		if parts[i].res.NewVersions != nil && out.NewVersions == nil {
			out.NewVersions = make(map[memento.Key]uint64)
		}
		for k, v := range parts[i].res.NewVersions {
			out.NewVersions[k] = v
		}
	}
	obsTwoPCCommits.Inc()
	for i := range parts {
		obsShardCommits.With(strconv.Itoa(parts[i].shard)).Inc()
	}
	return out, nil
}

// ApplyCommitSets applies each set independently through the routing
// decision rule. The group-commit coalescing lives per shard (inside
// each backend), so the router doesn't re-batch; it just preserves the
// per-set result shape.
func (r *Router) ApplyCommitSets(ctx context.Context, sets []memento.CommitSet) ([]sqlstore.ApplySetResult, error) {
	out := make([]sqlstore.ApplySetResult, len(sets))
	for i := range sets {
		out[i].Res, out[i].Err = r.ApplyCommitSet(ctx, sets[i])
	}
	return out, nil
}

// Begin starts a transaction bound lazily to the first shard a
// statement identifies. The sharded deployment runs the whole-set
// shipping algorithm (commit sets go through ApplyCommitSet), so
// explicit transactions only serve single-shard uses; a statement for
// a second shard fails rather than silently spanning stores without a
// coordinator.
func (r *Router) Begin(ctx context.Context) (storeapi.Txn, error) {
	return &routerTxn{r: r, shard: -1}, nil
}

// Subscribe merges every shard's invalidation stream into one channel.
// When any shard's stream dies the whole merged stream is torn down
// (channel closed, every subscription cancelled): the subscriber can't
// trust a partial view — a silent gap on one shard would leave its
// rows stale forever — so it clears its cache and resubscribes,
// exactly as for a single lost stream today.
func (r *Router) Subscribe(ctx context.Context) (<-chan sqlstore.Notice, func(), error) {
	if len(r.conns) == 1 {
		return r.conns[0].Subscribe(ctx)
	}
	chans := make([]<-chan sqlstore.Notice, 0, len(r.conns))
	cancels := make([]func(), 0, len(r.conns))
	for _, c := range r.conns {
		ch, cancel, err := c.Subscribe(ctx)
		if err != nil {
			for _, cl := range cancels {
				cl()
			}
			return nil, nil, err
		}
		chans = append(chans, ch)
		cancels = append(cancels, cancel)
	}
	out := make(chan sqlstore.Notice, 64*len(r.conns))
	stop := make(chan struct{})
	var once sync.Once
	halt := func() {
		once.Do(func() {
			close(stop)
			for _, cl := range cancels {
				cl()
			}
		})
	}
	var wg sync.WaitGroup
	for _, ch := range chans {
		wg.Add(1)
		go func(ch <-chan sqlstore.Notice) {
			defer wg.Done()
			for {
				select {
				case n, ok := <-ch:
					if !ok {
						halt()
						return
					}
					select {
					case out <- n:
					default:
						// Drop rather than stall the merge; notices are hints
						// and the per-shard sources drop under pressure too.
					}
				case <-stop:
					return
				}
			}
		}(ch)
	}
	go func() {
		wg.Wait()
		close(out)
	}()
	return out, halt, nil
}

// Close closes every per-shard connection, returning the first error.
func (r *Router) Close() error {
	var first error
	for _, c := range r.conns {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// routerTxn is a lazily-bound single-shard transaction.
type routerTxn struct {
	r     *Router
	shard int
	inner storeapi.Txn
}

var _ storeapi.Txn = (*routerTxn)(nil)

var errCrossShardTxn = errors.New("shard: statement crosses shards inside a transaction (use commit-set shipping)")

func (t *routerTxn) bind(ctx context.Context, shard int) (storeapi.Txn, error) {
	if t.inner != nil {
		if shard != t.shard {
			return nil, errCrossShardTxn
		}
		return t.inner, nil
	}
	inner, err := t.r.conns[shard].Begin(ctx)
	if err != nil {
		return nil, err
	}
	t.inner, t.shard = inner, shard
	return inner, nil
}

func (t *routerTxn) bindKey(ctx context.Context, table, id string) (storeapi.Txn, error) {
	return t.bind(ctx, t.r.ring.Of(memento.Key{Table: table, ID: id}))
}

func (t *routerTxn) ID() uint64 {
	if t.inner == nil {
		return 0
	}
	return t.inner.ID()
}

func (t *routerTxn) Get(ctx context.Context, table, id string) (storeapi.GetResult, error) {
	tx, err := t.bindKey(ctx, table, id)
	if err != nil {
		return storeapi.GetResult{}, err
	}
	return tx.Get(ctx, table, id)
}

func (t *routerTxn) GetForUpdate(ctx context.Context, table, id string) (storeapi.GetResult, error) {
	tx, err := t.bindKey(ctx, table, id)
	if err != nil {
		return storeapi.GetResult{}, err
	}
	return tx.GetForUpdate(ctx, table, id)
}

func (t *routerTxn) Put(ctx context.Context, m memento.Memento) error {
	tx, err := t.bind(ctx, t.r.ring.Of(m.Key))
	if err != nil {
		return err
	}
	return tx.Put(ctx, m)
}

func (t *routerTxn) Insert(ctx context.Context, m memento.Memento) error {
	tx, err := t.bind(ctx, t.r.ring.Of(m.Key))
	if err != nil {
		return err
	}
	return tx.Insert(ctx, m)
}

func (t *routerTxn) Delete(ctx context.Context, table, id string) error {
	tx, err := t.bindKey(ctx, table, id)
	if err != nil {
		return err
	}
	return tx.Delete(ctx, table, id)
}

func (t *routerTxn) Query(ctx context.Context, q memento.Query) (storeapi.QueryResult, error) {
	if t.r.ring.Shards() == 1 {
		tx, err := t.bind(ctx, 0)
		if err != nil {
			return storeapi.QueryResult{}, err
		}
		return tx.Query(ctx, q)
	}
	if t.r.aff != nil {
		if p, ok := t.r.aff(q); ok {
			tx, err := t.bind(ctx, t.r.ring.OfPlacement(p))
			if err != nil {
				return storeapi.QueryResult{}, err
			}
			return tx.Query(ctx, q)
		}
	}
	return storeapi.QueryResult{}, errCrossShardTxn
}

func (t *routerTxn) CheckVersion(ctx context.Context, key memento.Key, version uint64) error {
	tx, err := t.bind(ctx, t.r.ring.Of(key))
	if err != nil {
		return err
	}
	return tx.CheckVersion(ctx, key, version)
}

func (t *routerTxn) CheckedPut(ctx context.Context, m memento.Memento) error {
	tx, err := t.bind(ctx, t.r.ring.Of(m.Key))
	if err != nil {
		return err
	}
	return tx.CheckedPut(ctx, m)
}

func (t *routerTxn) CheckedDelete(ctx context.Context, key memento.Key, version uint64) error {
	tx, err := t.bind(ctx, t.r.ring.Of(key))
	if err != nil {
		return err
	}
	return tx.CheckedDelete(ctx, key, version)
}

func (t *routerTxn) Commit(ctx context.Context) error {
	if t.inner == nil {
		return nil
	}
	return t.inner.Commit(ctx)
}

func (t *routerTxn) Abort(ctx context.Context) error {
	if t.inner == nil {
		return nil
	}
	return t.inner.Abort(ctx)
}

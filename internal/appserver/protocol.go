package appserver

import "fmt"

// Request is one client interaction: a trade action plus parameters.
type Request struct {
	// SessionID is the client's HTTP-session equivalent.
	SessionID string
	// Action is the trade action name (trade.Action.String()).
	Action string
	// Params carries the action's form fields.
	Params map[string]string
}

// WireLabel names the request's action for per-op transport stats.
func (r *Request) WireLabel() string { return r.Action }

// Response is the rendered result of one interaction.
type Response struct {
	// OK is false when the action failed; Err carries the message.
	OK  bool
	Err string
	// Body is the rendered HTML page.
	Body []byte
}

// Error materializes a failed response as an error.
func (r *Response) Error() error {
	if r.OK {
		return nil
	}
	return fmt.Errorf("appserver: %s", r.Err)
}

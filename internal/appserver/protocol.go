// Package appserver implements the application-server tier: the process
// that receives client trade requests, runs the corresponding session
// logic (one transaction per request), renders the result page, and
// returns it. In the paper's setups this tier is Tomcat + servlets/JSPs
// over the EJB container; here it is a TCP request/response server over
// the trade service.
//
// The rendered page carries the presentation portion (HTML chrome) of
// the application. In the Clients/RAS architecture the full page crosses
// the high-latency path to the client, which is exactly what makes that
// architecture's bandwidth demand (> 7000 bytes per interaction in the
// paper) so much higher than the edge architectures', where the page is
// rendered at the edge and only entity data crosses the shared path.
package appserver

import "fmt"

// Request is one client interaction: a trade action plus parameters.
type Request struct {
	// SessionID is the client's HTTP-session equivalent.
	SessionID string
	// Action is the trade action name (trade.Action.String()).
	Action string
	// Params carries the action's form fields.
	Params map[string]string
}

// WireLabel names the request's action for per-op transport stats.
func (r *Request) WireLabel() string { return r.Action }

// Response is the rendered result of one interaction.
type Response struct {
	// OK is false when the action failed; Err carries the message.
	OK  bool
	Err string
	// Body is the rendered HTML page.
	Body []byte
}

// Error materializes a failed response as an error.
func (r *Response) Error() error {
	if r.OK {
		return nil
	}
	return fmt.Errorf("appserver: %s", r.Err)
}

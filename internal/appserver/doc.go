// Package appserver implements the application-server tier: the process
// that receives client trade requests, runs the corresponding session
// logic (one transaction per request), renders the result page, and
// returns it. In the paper's setups this tier is Tomcat + servlets/JSPs
// over the EJB container; here it is a TCP request/response server over
// the trade service.
//
// The rendered page carries the presentation portion (HTML chrome) of
// the application. In the Clients/RAS architecture the full page crosses
// the high-latency path to the client, which is exactly what makes that
// architecture's bandwidth demand (> 7000 bytes per interaction in the
// paper) so much higher than the edge architectures', where the page is
// rendered at the edge and only entity data crosses the shared path.
//
// Paper mapping: one Server is one "HTTP server + application server"
// box of Figures 3–5 — an edge server under ES/RDB and ES/RBES, the
// remote application server under Clients/RAS. Each dispatched action is
// timed as an "edge.request" trace span and counted by the
// appserver.requests / appserver.failures metrics (see OBSERVABILITY.md).
package appserver

package appserver

import (
	"net/http"
	"strings"

	"edgeejb/internal/trade"
)

// HTTPGateway adapts the trade service to real HTTP, so a browser (or
// curl) can drive an edge server directly — the paper's clients are web
// browsers talking to an HTTP server in front of the application server
// (Figures 3–5). The gateway serves:
//
//	GET /trade/{action}?user=...&symbol=...&quantity=...&n=...
//	GET /healthz
//
// Action names are the Table 1 names (login, logout, register, home,
// account, accountUpdate, portfolio, quote, buy, sell) plus the
// marketSummary extension. Responses are the same rendered pages the
// gob protocol returns; application errors map to 422 and unknown
// actions to 404.
type HTTPGateway struct {
	srv *Server
	mux *http.ServeMux
}

var _ http.Handler = (*HTTPGateway)(nil)

// NewHTTPGateway wraps an application server's dispatch logic. The
// gateway shares the server's request/failure counters.
func NewHTTPGateway(srv *Server) *HTTPGateway {
	g := &HTTPGateway{srv: srv, mux: http.NewServeMux()}
	g.mux.HandleFunc("/healthz", g.handleHealth)
	g.mux.HandleFunc("/trade/", g.handleTrade)
	return g
}

// ServeHTTP implements http.Handler.
func (g *HTTPGateway) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	g.mux.ServeHTTP(w, r)
}

func (g *HTTPGateway) handleHealth(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_, _ = w.Write([]byte("ok\n"))
}

func (g *HTTPGateway) handleTrade(w http.ResponseWriter, r *http.Request) {
	action := strings.TrimPrefix(r.URL.Path, "/trade/")
	if action == "" || strings.Contains(action, "/") {
		http.NotFound(w, r)
		return
	}
	if _, err := trade.ParseAction(action); err != nil && action != "marketSummary" {
		http.NotFound(w, r)
		return
	}

	params := make(map[string]string)
	for key, vals := range r.URL.Query() {
		if len(vals) > 0 {
			params[key] = vals[0]
		}
	}
	sessionID := params["session"]
	if sessionID == "" {
		if c, err := r.Cookie("tradesession"); err == nil {
			sessionID = c.Value
		}
	}

	resp := g.srv.dispatch(r.Context(), &Request{
		SessionID: sessionID,
		Action:    action,
		Params:    params,
	})
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	if !resp.OK {
		w.WriteHeader(http.StatusUnprocessableEntity)
		_, _ = w.Write(renderPage("Error", "<p>"+htmlEscape(resp.Err)+"</p>"))
		return
	}
	_, _ = w.Write(resp.Body)
}

// htmlEscape escapes the handful of characters that matter in the error
// page body.
func htmlEscape(s string) string {
	r := strings.NewReplacer(
		"&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;", "'", "&#39;",
	)
	return r.Replace(s)
}

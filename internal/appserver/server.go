package appserver

import (
	"bufio"
	"context"
	"encoding/gob"
	"errors"
	"net"
	"strconv"
	"sync"
	"sync/atomic"

	"edgeejb/internal/trade"
)

// Server hosts the trade application over the client protocol. One
// instance stands in for an "HTTP server + application server" box in
// Figures 3–5; the harness deploys it as an edge server or as the
// remote application server depending on the architecture.
type Server struct {
	svc *trade.Service

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup

	requests atomic.Uint64
	failures atomic.Uint64
}

// NewServer wraps a trade service.
func NewServer(svc *trade.Service) *Server {
	return &Server{
		svc:   svc,
		conns: make(map[net.Conn]struct{}),
	}
}

// Requests returns the number of requests served.
func (s *Server) Requests() uint64 { return s.requests.Load() }

// Failures returns the number of requests that returned an error.
func (s *Server) Failures() uint64 { return s.failures.Load() }

// Start listens on addr and serves in the background until Close.
func (s *Server) Start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		_ = ln.Close()
		return errors.New("appserver: server closed")
	}
	s.ln = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return nil
}

// Addr returns the listen address. It panics if Start has not been
// called.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the listener and tears down connections.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	ln := s.ln
	for c := range s.conns {
		_ = c.Close()
	}
	s.mu.Unlock()
	if ln != nil {
		_ = ln.Close()
	}
	s.wg.Wait()
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		if !s.track(conn) {
			_ = conn.Close()
			return
		}
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) track(c net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.conns[c] = struct{}{}
	return true
}

func (s *Server) untrack(c net.Conn) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.conns, c)
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer s.untrack(conn)
	defer conn.Close()

	bw := bufio.NewWriter(conn)
	dec := gob.NewDecoder(bufio.NewReader(conn))
	enc := gob.NewEncoder(bw)
	ctx := context.Background()

	for {
		var req Request
		if err := dec.Decode(&req); err != nil {
			return
		}
		resp := s.dispatch(ctx, &req)
		if err := enc.Encode(resp); err != nil {
			return
		}
		if err := bw.Flush(); err != nil {
			return
		}
	}
}

// dispatch maps one request to the trade service.
func (s *Server) dispatch(ctx context.Context, req *Request) *Response {
	s.requests.Add(1)
	fail := func(err error) *Response {
		s.failures.Add(1)
		return &Response{Err: err.Error()}
	}
	p := func(k string) string { return req.Params[k] }

	// Extension action (not part of Table 1's mix): market summary.
	if req.Action == "marketSummary" {
		n, err := strconv.Atoi(p("n"))
		if err != nil || n < 1 {
			n = 5
		}
		r, err := s.svc.MarketSummary(ctx, n)
		if err != nil {
			return fail(err)
		}
		return &Response{OK: true, Body: renderMarketSummary(r)}
	}

	action, err := trade.ParseAction(req.Action)
	if err != nil {
		return fail(err)
	}
	switch action {
	case trade.ActionLogin:
		r, err := s.svc.Login(ctx, p("user"), req.SessionID)
		if err != nil {
			return fail(err)
		}
		return &Response{OK: true, Body: renderLogin(r)}

	case trade.ActionLogout:
		if err := s.svc.Logout(ctx, p("user")); err != nil {
			return fail(err)
		}
		return &Response{OK: true, Body: renderLogout(p("user"))}

	case trade.ActionRegister:
		if err := s.svc.Register(ctx, p("newUser"), p("fullName"), p("email"), 1_000_000); err != nil {
			return fail(err)
		}
		return &Response{OK: true, Body: renderRegister(p("newUser"))}

	case trade.ActionHome:
		r, err := s.svc.Home(ctx, p("user"))
		if err != nil {
			return fail(err)
		}
		return &Response{OK: true, Body: renderHome(r)}

	case trade.ActionAccount:
		r, err := s.svc.Account(ctx, p("user"))
		if err != nil {
			return fail(err)
		}
		return &Response{OK: true, Body: renderAccount(r)}

	case trade.ActionAccountUpdate:
		if err := s.svc.AccountUpdate(ctx, p("user"), p("address"), p("email")); err != nil {
			return fail(err)
		}
		return &Response{OK: true, Body: renderAccountUpdate(p("user"))}

	case trade.ActionPortfolio:
		r, err := s.svc.Portfolio(ctx, p("user"))
		if err != nil {
			return fail(err)
		}
		return &Response{OK: true, Body: renderPortfolio(r)}

	case trade.ActionQuote:
		r, err := s.svc.GetQuote(ctx, p("symbol"))
		if err != nil {
			return fail(err)
		}
		return &Response{OK: true, Body: renderQuote(r)}

	case trade.ActionBuy:
		qty, err := strconv.ParseFloat(p("quantity"), 64)
		if err != nil || qty <= 0 {
			qty = 1
		}
		r, err := s.svc.Buy(ctx, p("user"), p("symbol"), qty)
		if err != nil {
			return fail(err)
		}
		return &Response{OK: true, Body: renderBuy(r)}

	case trade.ActionSell:
		r, err := s.svc.Sell(ctx, p("user"))
		if err != nil {
			return fail(err)
		}
		return &Response{OK: true, Body: renderSell(r)}

	default:
		return fail(errors.New("appserver: unhandled action " + req.Action))
	}
}

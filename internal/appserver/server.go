package appserver

import (
	"context"
	"errors"
	"strconv"
	"sync/atomic"

	"edgeejb/internal/obs"
	"edgeejb/internal/trade"
	"edgeejb/internal/wire"
)

// Process-wide obs mirrors of request outcomes, summed across every
// Server in the process. Names are documented in OBSERVABILITY.md.
var (
	obsRequests = obs.Default.Counter("appserver.requests")
	obsFailures = obs.Default.Counter("appserver.failures")
)

// Server hosts the trade application over the client protocol. One
// instance stands in for an "HTTP server + application server" box in
// Figures 3–5; the harness deploys it as an edge server or as the
// remote application server depending on the architecture. Framing,
// accept loops, and graceful drain live in the shared transport
// (package wire).
type Server struct {
	svc   *trade.Service
	inner *wire.Server

	requests atomic.Uint64
	failures atomic.Uint64
}

// NewServer wraps a trade service.
func NewServer(svc *trade.Service) *Server {
	s := &Server{svc: svc}
	s.inner = wire.NewServer(func() wire.ConnHandler { return appHandler{s: s} })
	return s
}

// Requests returns the number of requests served.
func (s *Server) Requests() uint64 { return s.requests.Load() }

// Failures returns the number of requests that returned an error.
func (s *Server) Failures() uint64 { return s.failures.Load() }

// WireStats returns the server-side transport counters.
func (s *Server) WireStats() wire.Stats { return s.inner.Stats() }

// Start listens on addr and serves in the background until Close.
func (s *Server) Start(addr string) error { return s.inner.Start(addr) }

// Addr returns the listen address. It panics if Start has not been
// called.
func (s *Server) Addr() string { return s.inner.Addr() }

// Close drains in-flight requests, then tears down connections.
func (s *Server) Close() { s.inner.Close() }

// appHandler adapts the stateless dispatch to the transport's
// per-connection handler shape.
type appHandler struct {
	s *Server
}

func (h appHandler) NewRequest() any { return new(Request) }

func (h appHandler) Handle(ctx context.Context, _ *wire.Session, _ uint64, req any) any {
	return h.s.dispatch(ctx, req.(*Request))
}

func (h appHandler) Close() {}

// dispatch maps one request to the trade service.
func (s *Server) dispatch(ctx context.Context, req *Request) *Response {
	s.requests.Add(1)
	obsRequests.Inc()
	ctx, sp := obs.StartSpan(ctx, "edge.request")
	defer sp.End()
	// Label downstream forensic events (conflicts, in particular) with
	// the trade action, so conflict matrices break down by interaction.
	ctx = obs.WithOp(ctx, req.Action)
	fail := func(err error) *Response {
		s.failures.Add(1)
		obsFailures.Inc()
		return &Response{Err: err.Error()}
	}
	p := func(k string) string { return req.Params[k] }

	// Extension action (not part of Table 1's mix): market summary.
	if req.Action == "marketSummary" {
		n, err := strconv.Atoi(p("n"))
		if err != nil || n < 1 {
			n = 5
		}
		r, err := s.svc.MarketSummary(ctx, n)
		if err != nil {
			return fail(err)
		}
		return &Response{OK: true, Body: renderMarketSummary(r)}
	}

	action, err := trade.ParseAction(req.Action)
	if err != nil {
		return fail(err)
	}
	switch action {
	case trade.ActionLogin:
		r, err := s.svc.Login(ctx, p("user"), req.SessionID)
		if err != nil {
			return fail(err)
		}
		return &Response{OK: true, Body: renderLogin(r)}

	case trade.ActionLogout:
		if err := s.svc.Logout(ctx, p("user")); err != nil {
			return fail(err)
		}
		return &Response{OK: true, Body: renderLogout(p("user"))}

	case trade.ActionRegister:
		if err := s.svc.Register(ctx, p("newUser"), p("fullName"), p("email"), 1_000_000); err != nil {
			return fail(err)
		}
		return &Response{OK: true, Body: renderRegister(p("newUser"))}

	case trade.ActionHome:
		r, err := s.svc.Home(ctx, p("user"))
		if err != nil {
			return fail(err)
		}
		return &Response{OK: true, Body: renderHome(r)}

	case trade.ActionAccount:
		r, err := s.svc.Account(ctx, p("user"))
		if err != nil {
			return fail(err)
		}
		return &Response{OK: true, Body: renderAccount(r)}

	case trade.ActionAccountUpdate:
		if err := s.svc.AccountUpdate(ctx, p("user"), p("address"), p("email")); err != nil {
			return fail(err)
		}
		return &Response{OK: true, Body: renderAccountUpdate(p("user"))}

	case trade.ActionPortfolio:
		r, err := s.svc.Portfolio(ctx, p("user"))
		if err != nil {
			return fail(err)
		}
		return &Response{OK: true, Body: renderPortfolio(r)}

	case trade.ActionQuote:
		r, err := s.svc.GetQuote(ctx, p("symbol"))
		if err != nil {
			return fail(err)
		}
		return &Response{OK: true, Body: renderQuote(r)}

	case trade.ActionBuy:
		qty, err := strconv.ParseFloat(p("quantity"), 64)
		if err != nil || qty <= 0 {
			qty = 1
		}
		r, err := s.svc.Buy(ctx, p("user"), p("symbol"), qty)
		if err != nil {
			return fail(err)
		}
		return &Response{OK: true, Body: renderBuy(r)}

	case trade.ActionSell:
		r, err := s.svc.Sell(ctx, p("user"))
		if err != nil {
			return fail(err)
		}
		return &Response{OK: true, Body: renderSell(r)}

	default:
		return fail(errors.New("appserver: unhandled action " + req.Action))
	}
}

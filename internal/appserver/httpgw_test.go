package appserver

import (
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"edgeejb/internal/trade"
)

func newGateway(t *testing.T) *httptest.Server {
	t.Helper()
	srv, _ := newAppServer(t) // the gob listener is unused here
	gw := httptest.NewServer(NewHTTPGateway(srv))
	t.Cleanup(gw.Close)
	return gw
}

func get(t *testing.T, gw *httptest.Server, path string) (int, string) {
	t.Helper()
	resp, err := http.Get(gw.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestHTTPGatewayHealth(t *testing.T) {
	gw := newGateway(t)
	code, body := get(t, gw, "/healthz")
	if code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("healthz = %d %q", code, body)
	}
}

func TestHTTPGatewayFullSession(t *testing.T) {
	gw := newGateway(t)
	user := url.QueryEscape(trade.UserID(0))

	paths := []string{
		"/trade/login?user=" + user + "&session=http-1",
		"/trade/home?user=" + user,
		"/trade/quote?user=" + user + "&symbol=" + url.QueryEscape(trade.SymbolID(1)),
		"/trade/portfolio?user=" + user,
		"/trade/buy?user=" + user + "&symbol=" + url.QueryEscape(trade.SymbolID(1)) + "&quantity=2",
		"/trade/sell?user=" + user,
		"/trade/marketSummary?n=3",
		"/trade/logout?user=" + user,
	}
	for _, path := range paths {
		code, body := get(t, gw, path)
		if code != http.StatusOK {
			t.Fatalf("%s: status %d body %q", path, code, body)
		}
		if !strings.Contains(body, "<html>") {
			t.Fatalf("%s: not a page", path)
		}
	}
}

func TestHTTPGatewayErrors(t *testing.T) {
	gw := newGateway(t)

	// Unknown action -> 404.
	if code, _ := get(t, gw, "/trade/no-such-action"); code != http.StatusNotFound {
		t.Errorf("unknown action status = %d, want 404", code)
	}
	// Nested path -> 404.
	if code, _ := get(t, gw, "/trade/home/extra"); code != http.StatusNotFound {
		t.Errorf("nested path status = %d, want 404", code)
	}
	// Application failure -> 422 with an escaped error page.
	code, body := get(t, gw, "/trade/home?user=<ghost>")
	if code != http.StatusUnprocessableEntity {
		t.Errorf("app failure status = %d, want 422", code)
	}
	if strings.Contains(body, "<ghost>") {
		t.Error("error page did not escape user input")
	}
	if !strings.Contains(body, "&lt;ghost&gt;") {
		t.Errorf("escaped user id missing from error page:\n%s", body)
	}
}

func TestHTTPGatewaySessionCookie(t *testing.T) {
	gw := newGateway(t)
	user := url.QueryEscape(trade.UserID(1))

	req, err := http.NewRequest(http.MethodGet, gw.URL+"/trade/login?user="+user, nil)
	if err != nil {
		t.Fatal(err)
	}
	req.AddCookie(&http.Cookie{Name: "tradesession", Value: "cookie-sess"})
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if !strings.Contains(string(body), "cookie-sess") {
		t.Error("session cookie not used as the session id")
	}
}

package appserver

import (
	"context"
	"strings"
	"testing"

	"edgeejb/internal/component"
	"edgeejb/internal/sqlstore"
	"edgeejb/internal/storeapi"
	"edgeejb/internal/trade"
)

// newAppServer starts a full application server over a seeded store.
func newAppServer(t *testing.T) (*Server, *Client) {
	t.Helper()
	store := sqlstore.New()
	t.Cleanup(store.Close)
	trade.Populate(store, trade.PopulateConfig{Users: 5, Symbols: 10, HoldingsPerUser: 2, OpenBalance: 10_000})
	reg, err := trade.NewEntityRegistry()
	if err != nil {
		t.Fatal(err)
	}
	svc := trade.NewService(component.NewContainer(reg, component.NewJDBCManager(storeapi.Local(store))))
	srv := NewServer(svc)
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	client := NewClient(srv.Addr())
	t.Cleanup(func() {
		_ = client.Close()
		srv.Close()
	})
	return srv, client
}

func TestDispatchAllActions(t *testing.T) {
	srv, client := newAppServer(t)
	ctx := context.Background()
	user := trade.UserID(0)

	steps := []trade.Step{
		{Action: trade.ActionLogin, UserID: user, SessionID: "s1"},
		{Action: trade.ActionHome, UserID: user},
		{Action: trade.ActionAccount, UserID: user},
		{Action: trade.ActionAccountUpdate, UserID: user, Address: "1 Edge Way", Email: "e@example.test"},
		{Action: trade.ActionPortfolio, UserID: user},
		{Action: trade.ActionQuote, UserID: user, Symbol: trade.SymbolID(1)},
		{Action: trade.ActionBuy, UserID: user, Symbol: trade.SymbolID(1), Quantity: 2},
		{Action: trade.ActionSell, UserID: user},
		{Action: trade.ActionRegister, UserID: user, NewUserID: "reg-1", FullName: "R U", Email: "r@example.test"},
		{Action: trade.ActionLogout, UserID: user},
	}
	for _, step := range steps {
		resp, err := client.DoStep(ctx, step)
		if err != nil {
			t.Fatalf("%s: transport: %v", step.Action, err)
		}
		if !resp.OK {
			t.Fatalf("%s: application error: %s", step.Action, resp.Err)
		}
		if len(resp.Body) == 0 {
			t.Fatalf("%s: empty page", step.Action)
		}
		if !strings.Contains(string(resp.Body), "<html>") {
			t.Fatalf("%s: response is not a page", step.Action)
		}
	}
	if srv.Requests() != uint64(len(steps)) {
		t.Errorf("requests = %d, want %d", srv.Requests(), len(steps))
	}
	if srv.Failures() != 0 {
		t.Errorf("failures = %d, want 0", srv.Failures())
	}
}

func TestPresentationPayloadSize(t *testing.T) {
	_, client := newAppServer(t)
	resp, err := client.Do(context.Background(), &Request{
		Action: "home",
		Params: map[string]string{"user": trade.UserID(0)},
	})
	if err != nil {
		t.Fatal(err)
	}
	// The presentation chrome is what makes Clients/RAS transmit
	// "more than 7000 bytes" per interaction (§4.4, Figure 8).
	if len(resp.Body) < 5000 {
		t.Errorf("page size = %d bytes; presentation chrome too small for the bandwidth experiment", len(resp.Body))
	}
	if len(resp.Body) > 20000 {
		t.Errorf("page size = %d bytes; unrealistically large", len(resp.Body))
	}
}

func TestApplicationErrorsAreResponses(t *testing.T) {
	srv, client := newAppServer(t)
	ctx := context.Background()

	resp, err := client.Do(ctx, &Request{Action: "home", Params: map[string]string{"user": "ghost"}})
	if err != nil {
		t.Fatalf("transport error for app failure: %v", err)
	}
	if resp.OK {
		t.Fatal("missing user reported OK")
	}
	if resp.Error() == nil {
		t.Fatal("Error() nil for failed response")
	}

	resp, err = client.Do(ctx, &Request{Action: "no-such-action"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.OK {
		t.Fatal("unknown action reported OK")
	}
	if srv.Failures() != 2 {
		t.Errorf("failures = %d, want 2", srv.Failures())
	}
}

func TestClientReconnectsAfterServerRestart(t *testing.T) {
	store := sqlstore.New()
	defer store.Close()
	trade.Populate(store, trade.PopulateConfig{Users: 2, Symbols: 2, HoldingsPerUser: 1})
	reg, _ := trade.NewEntityRegistry()
	svc := trade.NewService(component.NewContainer(reg, component.NewJDBCManager(storeapi.Local(store))))

	srv := NewServer(svc)
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()
	client := NewClient(addr)
	defer client.Close()
	ctx := context.Background()

	if _, err := client.Do(ctx, &Request{Action: "home", Params: map[string]string{"user": trade.UserID(0)}}); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	// First call after the drop fails with a transport error...
	if _, err := client.Do(ctx, &Request{Action: "home", Params: map[string]string{"user": trade.UserID(0)}}); err == nil {
		t.Fatal("expected transport error after server close")
	}
	// ...then a new server on the same address is reachable again.
	srv2 := NewServer(svc)
	if err := srv2.Start(addr); err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	if _, err := client.Do(ctx, &Request{Action: "home", Params: map[string]string{"user": trade.UserID(0)}}); err != nil {
		t.Fatalf("client did not redial: %v", err)
	}
}

func TestStepRequestParams(t *testing.T) {
	tests := []struct {
		name string
		give trade.Step
		want map[string]string
	}{
		{
			name: "quote",
			give: trade.Step{Action: trade.ActionQuote, UserID: "u", Symbol: "s-1"},
			want: map[string]string{"user": "u", "symbol": "s-1"},
		},
		{
			name: "buy",
			give: trade.Step{Action: trade.ActionBuy, UserID: "u", Symbol: "s-2", Quantity: 4},
			want: map[string]string{"user": "u", "symbol": "s-2", "quantity": "4"},
		},
		{
			name: "register",
			give: trade.Step{Action: trade.ActionRegister, UserID: "u", NewUserID: "n", FullName: "F", Email: "e"},
			want: map[string]string{"user": "u", "newUser": "n", "fullName": "F", "email": "e"},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			req, err := StepRequest(tt.give)
			if err != nil {
				t.Fatal(err)
			}
			if req.Action != tt.give.Action.String() {
				t.Errorf("action = %s", req.Action)
			}
			for k, v := range tt.want {
				if req.Params[k] != v {
					t.Errorf("param %s = %q, want %q", k, req.Params[k], v)
				}
			}
		})
	}
	if _, err := StepRequest(trade.Step{Action: trade.Action(99)}); err == nil {
		t.Error("unknown step action accepted")
	}
}

func TestMarketSummaryAction(t *testing.T) {
	_, client := newAppServer(t)
	resp, err := client.Do(context.Background(), &Request{
		Action: "marketSummary",
		Params: map[string]string{"n": "3"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.OK {
		t.Fatalf("marketSummary failed: %s", resp.Err)
	}
	if !strings.Contains(string(resp.Body), "Market Summary") {
		t.Error("summary page not rendered")
	}
	// Bad n falls back to the default instead of failing.
	resp, err = client.Do(context.Background(), &Request{
		Action: "marketSummary",
		Params: map[string]string{"n": "bogus"},
	})
	if err != nil || !resp.OK {
		t.Fatalf("bad n not tolerated: %v %+v", err, resp)
	}
}

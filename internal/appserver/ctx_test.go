package appserver

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"
)

// TestDoHonorsDeadlineOnStalledServer: the regression for the old
// client ignoring ctx once its connection was up — an in-flight Do
// against a stalled server must return by the context deadline.
func TestDoHonorsDeadlineOnStalledServer(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			defer conn.Close() // accept and never answer
		}
	}()

	client := NewClient(ln.Addr().String())
	defer client.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = client.Do(ctx, &Request{Action: "home", Params: map[string]string{"user": "u"}})
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("Do against stalled server succeeded")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("Do hung %v past its 150ms deadline", elapsed)
	}
}

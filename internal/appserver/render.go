package appserver

import (
	"fmt"
	"strings"

	"edgeejb/internal/trade"
)

// pageChrome is the presentation portion shared by every page: markup,
// styles and scripts a brokerage front-end would ship with each
// response. Its size is what separates the Clients/RAS bandwidth curve
// from the edge architectures in Figure 8, so it is deliberately sized
// like a real (2004-era) page: about 6 KB.
var pageChrome = buildChrome()

func buildChrome() string {
	var sb strings.Builder
	sb.WriteString("<!DOCTYPE html><html><head><title>Trade - Online Brokerage</title>\n")
	sb.WriteString("<style>\n")
	for i := 0; i < 40; i++ {
		fmt.Fprintf(&sb, ".panel-%02d { border: 1px solid #003366; padding: 4px; margin: 2px; "+
			"font-family: Verdana, Arial, sans-serif; font-size: 11px; color: #00%02x66; }\n", i, i*4)
	}
	sb.WriteString("</style>\n<script>\n")
	for i := 0; i < 25; i++ {
		fmt.Fprintf(&sb, "function nav_%02d(t) { document.location = '/trade/action?dest=' + t + '&panel=%02d'; }\n", i, i)
	}
	sb.WriteString("</script>\n</head><body>\n")
	sb.WriteString("<table width=\"100%\" class=\"panel-00\"><tr>")
	for _, item := range []string{
		"Home", "Account", "Portfolio", "Quotes/Trade", "Logoff",
		"Market Summary", "Glossary", "Help", "Contact",
	} {
		fmt.Fprintf(&sb, "<td><a href=\"#\" onclick=\"nav_00('%s')\">%s</a></td>", item, item)
	}
	sb.WriteString("</tr></table>\n")
	return sb.String()
}

const pageFooter = "<hr><i>Trade benchmark application &mdash; edge-server architecture evaluation.</i></body></html>\n"

// renderPage wraps a body fragment in the shared chrome.
func renderPage(title, body string) []byte {
	var sb strings.Builder
	sb.Grow(len(pageChrome) + len(body) + len(pageFooter) + 64)
	sb.WriteString(pageChrome)
	fmt.Fprintf(&sb, "<h1>%s</h1>\n", title)
	sb.WriteString(body)
	sb.WriteString(pageFooter)
	return []byte(sb.String())
}

func renderLogin(r trade.LoginResult) []byte {
	return renderPage("Welcome back", fmt.Sprintf(
		"<p>User %s logged in (session %s).</p><p>Logins: %d. Cash balance: $%.2f.</p>",
		r.UserID, r.SessionID, r.LoginCount, r.Balance))
}

func renderLogout(user string) []byte {
	return renderPage("Goodbye", fmt.Sprintf("<p>User %s logged off.</p>", user))
}

func renderRegister(user string) []byte {
	return renderPage("Registration complete", fmt.Sprintf(
		"<p>Created account, profile and registry entry for %s.</p>", user))
}

func renderHome(r trade.HomeResult) []byte {
	return renderPage("Trade Home", fmt.Sprintf(
		"<p>Welcome %s.</p><table class=\"panel-01\"><tr><td>Cash balance</td><td>$%.2f</td></tr>"+
			"<tr><td>Opening balance</td><td>$%.2f</td></tr></table>",
		r.UserID, r.Balance, r.Open))
}

func renderAccount(r trade.AccountResult) []byte {
	return renderPage("Account Information", fmt.Sprintf(
		"<table class=\"panel-02\"><tr><td>User</td><td>%s</td></tr><tr><td>Name</td><td>%s</td></tr>"+
			"<tr><td>Address</td><td>%s</td></tr><tr><td>Email</td><td>%s</td></tr></table>",
		r.UserID, r.FullName, r.Address, r.Email))
}

func renderAccountUpdate(user string) []byte {
	return renderPage("Account Updated", fmt.Sprintf("<p>Profile for %s updated.</p>", user))
}

func renderPortfolio(r trade.PortfolioResult) []byte {
	var sb strings.Builder
	fmt.Fprintf(&sb, "<p>%d holdings for %s.</p><table class=\"panel-03\">"+
		"<tr><th>Holding</th><th>Symbol</th><th>Qty</th><th>Price</th><th>Date</th></tr>",
		len(r.Holdings), r.UserID)
	for _, h := range r.Holdings {
		fmt.Fprintf(&sb, "<tr><td>%s</td><td>%s</td><td>%.0f</td><td>$%.2f</td><td>%s</td></tr>",
			h.HoldingID, h.Symbol, h.Quantity, h.PurchasePrice, h.PurchaseDate)
	}
	sb.WriteString("</table>")
	return renderPage("Portfolio", sb.String())
}

func renderMarketSummary(r trade.MarketSummaryResult) []byte {
	var sb strings.Builder
	fmt.Fprintf(&sb, "<p>Market summary (volume %.0f).</p><table class=\"panel-05\">"+
		"<tr><th>Symbol</th><th>Company</th><th>Price</th></tr>", r.Volume)
	for _, q := range r.Top {
		fmt.Fprintf(&sb, "<tr><td>%s</td><td>%s</td><td>$%.2f</td></tr>", q.Symbol, q.Company, q.Price)
	}
	sb.WriteString("</table>")
	return renderPage("Market Summary", sb.String())
}

func renderQuote(r trade.QuoteResult) []byte {
	return renderPage("Quote", fmt.Sprintf(
		"<table class=\"panel-04\"><tr><td>Symbol</td><td>%s</td></tr>"+
			"<tr><td>Price</td><td>$%.2f</td></tr></table>", r.Symbol, r.Price))
}

func renderBuy(r trade.BuyResult) []byte {
	return renderPage("Buy Order Confirmation", fmt.Sprintf(
		"<p>Bought %.0f %s @ $%.2f (total $%.2f). Holding %s. New balance $%.2f.</p>",
		r.Quantity, r.Symbol, r.Price, r.Total, r.HoldingID, r.Balance))
}

func renderSell(r trade.SellResult) []byte {
	if !r.Sold {
		return renderPage("Sell Order", "<p>No holdings to sell.</p>")
	}
	return renderPage("Sell Order Confirmation", fmt.Sprintf(
		"<p>Sold %.0f %s @ $%.2f (proceeds $%.2f). Holding %s closed. New balance $%.2f.</p>",
		r.Quantity, r.Symbol, r.Price, r.Proceeds, r.HoldingID, r.Balance))
}

package appserver

import (
	"context"
	"errors"
	"fmt"
	"net"

	"edgeejb/internal/trade"
	"edgeejb/internal/wire"
)

// DialFunc opens a connection to an application server; the harness
// injects dialers that route through the delay proxy (Clients/RAS) or
// count bytes.
type DialFunc func(ctx context.Context, addr string) (net.Conn, error)

// Client is the web-browser stand-in: it sends trade requests to an
// application server and receives rendered pages. A client keeps one
// persistent connection, like a browser with HTTP keep-alive; a
// transport error invalidates it and the next call redials. There is
// deliberately no retry — a browser surfaces the failed page load.
type Client struct {
	w *wire.Client
}

// ClientOption configures a Client.
type ClientOption interface {
	apply(*clientConfig)
}

type clientConfig struct {
	wopts []wire.Option
}

type clientDialerOption DialFunc

func (d clientDialerOption) apply(cfg *clientConfig) {
	cfg.wopts = append(cfg.wopts, wire.WithDialer(wire.DialFunc(d)))
}

// WithDialer overrides how the client connects.
func WithDialer(d DialFunc) ClientOption { return clientDialerOption(d) }

// NewClient creates a client for the application server at addr.
func NewClient(addr string, opts ...ClientOption) *Client {
	cfg := &clientConfig{wopts: []wire.Option{wire.WithMaxConns(1)}}
	for _, o := range opts {
		o.apply(cfg)
	}
	return &Client{w: wire.NewClient(addr, cfg.wopts...)}
}

// WireStats returns the transport counters (bytes, round trips, per-op
// latency) for this client's connection.
func (c *Client) WireStats() wire.Stats { return c.w.Stats() }

// Close drops the client's connection.
func (c *Client) Close() error { return c.w.Close() }

// Do performs one interaction.
func (c *Client) Do(ctx context.Context, req *Request) (*Response, error) {
	resp := new(Response)
	if err := c.w.Call(ctx, req, resp); err != nil {
		return nil, fmt.Errorf("appserver: %w", err)
	}
	return resp, nil
}

// DoStep converts a workload step into a request and performs it.
func (c *Client) DoStep(ctx context.Context, step trade.Step) (*Response, error) {
	req, err := StepRequest(step)
	if err != nil {
		return nil, err
	}
	return c.Do(ctx, req)
}

// StepRequest converts a workload step into a protocol request.
func StepRequest(step trade.Step) (*Request, error) {
	params := map[string]string{"user": step.UserID}
	switch step.Action {
	case trade.ActionLogin, trade.ActionLogout, trade.ActionHome,
		trade.ActionAccount, trade.ActionPortfolio, trade.ActionSell:
		// user only
	case trade.ActionAccountUpdate:
		params["address"] = step.Address
		params["email"] = step.Email
	case trade.ActionQuote:
		params["symbol"] = step.Symbol
	case trade.ActionBuy:
		params["symbol"] = step.Symbol
		params["quantity"] = fmt.Sprintf("%g", step.Quantity)
	case trade.ActionRegister:
		params["newUser"] = step.NewUserID
		params["fullName"] = step.FullName
		params["email"] = step.Email
	default:
		return nil, errors.New("appserver: unknown step action")
	}
	return &Request{
		SessionID: step.SessionID,
		Action:    step.Action.String(),
		Params:    params,
	}, nil
}

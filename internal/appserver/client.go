package appserver

import (
	"bufio"
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"

	"edgeejb/internal/trade"
)

// DialFunc opens a connection to an application server; the harness
// injects dialers that route through the delay proxy (Clients/RAS) or
// count bytes.
type DialFunc func(ctx context.Context, addr string) (net.Conn, error)

// Client is the web-browser stand-in: it sends trade requests to an
// application server and receives rendered pages. A client keeps one
// persistent connection, like a browser with HTTP keep-alive.
type Client struct {
	addr string
	dial DialFunc

	mu   sync.Mutex
	conn net.Conn
	bw   *bufio.Writer
	enc  *gob.Encoder
	dec  *gob.Decoder
}

// ClientOption configures a Client.
type ClientOption interface {
	apply(*Client)
}

type clientDialerOption DialFunc

func (d clientDialerOption) apply(c *Client) { c.dial = DialFunc(d) }

// WithDialer overrides how the client connects.
func WithDialer(d DialFunc) ClientOption { return clientDialerOption(d) }

// NewClient creates a client for the application server at addr.
func NewClient(addr string, opts ...ClientOption) *Client {
	c := &Client{
		addr: addr,
		dial: func(ctx context.Context, addr string) (net.Conn, error) {
			var d net.Dialer
			return d.DialContext(ctx, "tcp", addr)
		},
	}
	for _, o := range opts {
		o.apply(c)
	}
	return c
}

// Close drops the client's connection.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn != nil {
		err := c.conn.Close()
		c.conn = nil
		return err
	}
	return nil
}

func (c *Client) ensureConn(ctx context.Context) error {
	if c.conn != nil {
		return nil
	}
	conn, err := c.dial(ctx, c.addr)
	if err != nil {
		return fmt.Errorf("appserver: dial %s: %w", c.addr, err)
	}
	c.conn = conn
	c.bw = bufio.NewWriter(conn)
	c.enc = gob.NewEncoder(c.bw)
	c.dec = gob.NewDecoder(bufio.NewReader(conn))
	return nil
}

// Do performs one interaction. A transport error invalidates the
// connection; the next call redials.
func (c *Client) Do(ctx context.Context, req *Request) (*Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.ensureConn(ctx); err != nil {
		return nil, err
	}
	drop := func(err error) (*Response, error) {
		_ = c.conn.Close()
		c.conn = nil
		return nil, err
	}
	if err := c.enc.Encode(req); err != nil {
		return drop(fmt.Errorf("appserver: send: %w", err))
	}
	if err := c.bw.Flush(); err != nil {
		return drop(fmt.Errorf("appserver: flush: %w", err))
	}
	var resp Response
	if err := c.dec.Decode(&resp); err != nil {
		return drop(fmt.Errorf("appserver: recv: %w", err))
	}
	return &resp, nil
}

// DoStep converts a workload step into a request and performs it.
func (c *Client) DoStep(ctx context.Context, step trade.Step) (*Response, error) {
	req, err := StepRequest(step)
	if err != nil {
		return nil, err
	}
	return c.Do(ctx, req)
}

// StepRequest converts a workload step into a protocol request.
func StepRequest(step trade.Step) (*Request, error) {
	params := map[string]string{"user": step.UserID}
	switch step.Action {
	case trade.ActionLogin, trade.ActionLogout, trade.ActionHome,
		trade.ActionAccount, trade.ActionPortfolio, trade.ActionSell:
		// user only
	case trade.ActionAccountUpdate:
		params["address"] = step.Address
		params["email"] = step.Email
	case trade.ActionQuote:
		params["symbol"] = step.Symbol
	case trade.ActionBuy:
		params["symbol"] = step.Symbol
		params["quantity"] = fmt.Sprintf("%g", step.Quantity)
	case trade.ActionRegister:
		params["newUser"] = step.NewUserID
		params["fullName"] = step.FullName
		params["email"] = step.Email
	default:
		return nil, errors.New("appserver: unknown step action")
	}
	return &Request{
		SessionID: step.SessionID,
		Action:    step.Action.String(),
		Params:    params,
	}, nil
}

package component

import (
	"context"
	"errors"
	"fmt"

	"edgeejb/internal/memento"
	"edgeejb/internal/sqlstore"
	"edgeejb/internal/storeapi"
)

// Entity is the contract entity implementations satisfy: identity plus
// memento round-tripping. Concrete entities are plain structs (see
// package trade); the container moves their state in and out of
// mementos, never serializing the entity itself — the same restriction
// the EJB specification imposes.
type Entity interface {
	// PrimaryKey returns the entity's identity (table + primary key).
	PrimaryKey() memento.Key
	// ToMemento snapshots the entity's state. The Version field is
	// managed by the runtime and may be left zero.
	ToMemento() memento.Memento
	// LoadMemento replaces the entity's state from a snapshot.
	LoadMemento(m memento.Memento) error
}

// Descriptor describes one entity type to the container.
type Descriptor struct {
	// Table is the persistent table backing the entity type.
	Table string
	// New allocates an empty entity, used to materialize finder results.
	New func() Entity
}

// Registry maps tables to entity descriptors.
type Registry struct {
	byTable map[string]Descriptor
}

// NewRegistry builds a registry from descriptors.
func NewRegistry(descs ...Descriptor) (*Registry, error) {
	r := &Registry{byTable: make(map[string]Descriptor, len(descs))}
	for _, d := range descs {
		if d.Table == "" || d.New == nil {
			return nil, fmt.Errorf("component: invalid descriptor for table %q", d.Table)
		}
		if _, dup := r.byTable[d.Table]; dup {
			return nil, fmt.Errorf("component: duplicate descriptor for table %q", d.Table)
		}
		r.byTable[d.Table] = d
	}
	return r, nil
}

// Lookup returns the descriptor for a table.
func (r *Registry) Lookup(table string) (Descriptor, error) {
	d, ok := r.byTable[table]
	if !ok {
		return Descriptor{}, fmt.Errorf("component: no descriptor for table %q", table)
	}
	return d, nil
}

// DataTx is one transaction's view of the datastore, as provided by a
// resource manager. Mementos returned by Load/Query carry the version
// bookkeeping the manager needs at commit time.
type DataTx interface {
	// Load fetches the current state of an entity.
	Load(ctx context.Context, key memento.Key) (memento.Memento, error)
	// Store registers an updated after-image for an entity.
	Store(ctx context.Context, m memento.Memento) error
	// Create registers a new entity.
	Create(ctx context.Context, m memento.Memento) error
	// Remove registers deletion of an entity.
	Remove(ctx context.Context, key memento.Key) error
	// Query runs a custom finder.
	Query(ctx context.Context, q memento.Query) ([]memento.Memento, error)
	// Commit makes the transaction durable or fails with a conflict.
	Commit(ctx context.Context) error
	// Abort abandons the transaction.
	Abort(ctx context.Context) error
}

// ResourceManager begins data transactions.
type ResourceManager interface {
	// Begin starts a transaction.
	Begin(ctx context.Context) (DataTx, error)
	// Name identifies the algorithm for reports ("jdbc", "bmp", "sli").
	Name() string
}

// ManagerOption configures a resource manager (see WithBatching).
type ManagerOption func(*managerConfig)

type managerConfig struct {
	batch bool
}

// WithBatching makes the manager ship the independent statements of one
// container operation as a single multi-statement exchange instead of
// one round trip each: the BMP finder+ejbLoad pair, a finder's N
// ejbLoads, and the write-back+commit run at the end of a transaction.
// Semantics are unchanged (statements still execute sequentially,
// stopping at the first failure); only the round-trip count drops. Off
// by default so the unbatched managers keep the paper's classic
// per-statement access counts.
func WithBatching(on bool) ManagerOption {
	return func(cfg *managerConfig) { cfg.batch = on }
}

// firstStmtErr returns the first real failure in a batch's results —
// skipped markers just restate that an earlier statement failed.
func firstStmtErr(results []storeapi.StmtResult) error {
	for _, r := range results {
		if r.Err != nil && !errors.Is(r.Err, storeapi.ErrStmtSkipped) {
			return r.Err
		}
	}
	return nil
}

// ErrRollback can be returned by application functions to abort the
// transaction without surfacing an error from Execute.
var ErrRollback = errors.New("component: rollback requested")

// IsConflict reports whether an error is a serialization conflict — the
// signal that an optimistic transaction must be retried.
func IsConflict(err error) bool { return errors.Is(err, sqlstore.ErrConflict) }

// IsNotFound reports whether an error means the entity does not exist.
func IsNotFound(err error) bool { return errors.Is(err, sqlstore.ErrNotFound) }

// IsExists reports whether an error means the entity already exists.
func IsExists(err error) bool { return errors.Is(err, sqlstore.ErrExists) }

// Container hosts entity types and brackets application logic in
// transactions, the role the EJB container plays for session and entity
// beans.
type Container struct {
	registry *Registry
	rm       ResourceManager
}

// NewContainer assembles a container.
func NewContainer(registry *Registry, rm ResourceManager) *Container {
	return &Container{registry: registry, rm: rm}
}

// Algorithm returns the resource manager's name.
func (c *Container) Algorithm() string { return c.rm.Name() }

// Execute runs fn inside one transaction. The transaction commits when
// fn returns nil; any error aborts it. ErrRollback aborts silently. A
// panic in fn aborts the transaction before propagating — resource
// managers may pin a connection at Begin (the JDBC manager does), and
// an unwound transaction must not leak its pin.
func (c *Container) Execute(ctx context.Context, fn func(tx *Tx) error) error {
	dt, err := c.rm.Begin(ctx)
	if err != nil {
		return fmt.Errorf("component: begin: %w", err)
	}
	tx := &Tx{ctx: ctx, dt: dt, registry: c.registry}
	settled := false
	defer func() {
		if !settled {
			_ = dt.Abort(ctx)
		}
	}()
	if err := fn(tx); err != nil {
		settled = true
		_ = dt.Abort(ctx)
		if errors.Is(err, ErrRollback) {
			return nil
		}
		return err
	}
	settled = true
	if err := dt.Commit(ctx); err != nil {
		// A failed commit may leave the manager's transaction open (e.g.
		// a transport error before the commit round trip completed);
		// abort to release whatever it pinned.
		_ = dt.Abort(ctx)
		return err
	}
	return nil
}

// ExecuteRetry runs fn like Execute, retrying up to attempts times when
// the commit (or any statement) fails with an optimistic conflict. This
// is the standard client loop for the paper's optimistic isolation:
// "if another transaction modified the data ... t1 will be aborted".
func (c *Container) ExecuteRetry(ctx context.Context, attempts int, fn func(tx *Tx) error) error {
	if attempts < 1 {
		attempts = 1
	}
	var err error
	for i := 0; i < attempts; i++ {
		err = c.Execute(ctx, fn)
		if err == nil || !IsConflict(err) {
			return err
		}
	}
	return fmt.Errorf("component: giving up after %d conflicting attempts: %w", attempts, err)
}

// Tx is the application-facing transaction handle.
type Tx struct {
	ctx      context.Context
	dt       DataTx
	registry *Registry
}

// Context returns the transaction's context.
func (tx *Tx) Context() context.Context { return tx.ctx }

// Find loads the entity identified by e.PrimaryKey() into e
// (findByPrimaryKey followed by ejbLoad, in EJB terms).
func (tx *Tx) Find(e Entity) error {
	m, err := tx.dt.Load(tx.ctx, e.PrimaryKey())
	if err != nil {
		return err
	}
	return e.LoadMemento(m)
}

// Update registers e's current state as its after-image.
func (tx *Tx) Update(e Entity) error {
	return tx.dt.Store(tx.ctx, e.ToMemento())
}

// Create registers e as a newly created entity.
func (tx *Tx) Create(e Entity) error {
	return tx.dt.Create(tx.ctx, e.ToMemento())
}

// Remove registers deletion of the entity identified by e.PrimaryKey().
func (tx *Tx) Remove(e Entity) error {
	return tx.dt.Remove(tx.ctx, e.PrimaryKey())
}

// RemoveKey registers deletion by key.
func (tx *Tx) RemoveKey(key memento.Key) error {
	return tx.dt.Remove(tx.ctx, key)
}

// FindWhere runs a custom finder and materializes the resulting
// entities via the registry.
func (tx *Tx) FindWhere(q memento.Query) ([]Entity, error) {
	d, err := tx.registry.Lookup(q.Table)
	if err != nil {
		return nil, err
	}
	mems, err := tx.dt.Query(tx.ctx, q)
	if err != nil {
		return nil, err
	}
	out := make([]Entity, 0, len(mems))
	for _, m := range mems {
		e := d.New()
		if err := e.LoadMemento(m); err != nil {
			return nil, fmt.Errorf("component: materialize %s: %w", m.Key, err)
		}
		out = append(out, e)
	}
	return out, nil
}

// Package component implements the enterprise-component model that
// stands in for EJB entity beans: entities with identity and
// memento-serializable state, homes keyed by table, and a container that
// brackets business logic in transactions and delegates data access to a
// pluggable resource manager.
//
// Three resource managers exist, matching the paper's three algorithms:
//
//   - JDBC (this package): hand-optimized direct access with a
//     per-transaction statement cache, pessimistic locking.
//   - Vanilla EJB / BMP (this package): bean-managed persistence with
//     the classic container behaviors — ejbLoad on every access,
//     unconditional ejbStore at commit, and N+1 loads after finders.
//   - Cached EJB / SLI (package slicache): the paper's contribution.
//
// Application code is written once against Container/Tx and runs
// unchanged under any resource manager — the "transparent
// cache-enabling" requirement of §1.3.
package component

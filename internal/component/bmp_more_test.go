package component

import (
	"context"
	"errors"
	"testing"

	"edgeejb/internal/memento"
	"edgeejb/internal/sqlstore"
)

func TestManagerNames(t *testing.T) {
	_, conn := newStore(t)
	if got := NewJDBCManager(conn).Name(); got != "jdbc" {
		t.Errorf("jdbc name = %q", got)
	}
	if got := NewBMPManager(conn).Name(); got != "bmp" {
		t.Errorf("bmp name = %q", got)
	}
	c := NewContainer(itemRegistry(t), NewBMPManager(conn))
	if got := c.Algorithm(); got != "bmp" {
		t.Errorf("container algorithm = %q", got)
	}
}

func TestBMPCreateUpdateRemoveLifecycle(t *testing.T) {
	store, conn := newStore(t)
	c := NewContainer(itemRegistry(t), NewBMPManager(conn))
	ctx := context.Background()

	// Create then update in one transaction.
	if err := c.Execute(ctx, func(tx *Tx) error {
		if err := tx.Create(&item{ID: "x", Owner: "a", N: 1}); err != nil {
			return err
		}
		it := &item{ID: "x"}
		if err := tx.Find(it); err != nil {
			return err
		}
		it.N = 2
		return tx.Update(it)
	}); err != nil {
		t.Fatal(err)
	}
	// The committed state reflects the update.
	if err := c.Execute(ctx, func(tx *Tx) error {
		it := &item{ID: "x"}
		if err := tx.Find(it); err != nil {
			return err
		}
		if it.N != 2 {
			t.Errorf("n = %d, want 2", it.N)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	// Remove via RemoveKey; the delete is immediate and survives commit.
	if err := c.Execute(ctx, func(tx *Tx) error {
		return tx.RemoveKey(memento.Key{Table: "item", ID: "x"})
	}); err != nil {
		t.Fatal(err)
	}
	if store.RowCount("item") != 0 {
		t.Error("remove did not commit")
	}
}

func TestBMPRemoveAfterLoadNotStoredBack(t *testing.T) {
	// A bean activated then removed in the same transaction must not be
	// resurrected by the unconditional ejbStore pass at commit.
	store, conn := newStore(t, item{ID: "1", Owner: "a", N: 1})
	c := NewContainer(itemRegistry(t), NewBMPManager(conn))
	ctx := context.Background()

	if err := c.Execute(ctx, func(tx *Tx) error {
		it := &item{ID: "1"}
		if err := tx.Find(it); err != nil {
			return err
		}
		return tx.Remove(it)
	}); err != nil {
		t.Fatal(err)
	}
	if store.RowCount("item") != 0 {
		t.Error("removed bean resurrected by ejbStore")
	}
}

func TestBMPAbortDiscardsEverything(t *testing.T) {
	store, conn := newStore(t, item{ID: "1", Owner: "a", N: 1})
	c := NewContainer(itemRegistry(t), NewBMPManager(conn))
	ctx := context.Background()
	boom := errors.New("boom")

	err := c.Execute(ctx, func(tx *Tx) error {
		if err := tx.Create(&item{ID: "2", Owner: "b", N: 2}); err != nil {
			return err
		}
		it := &item{ID: "1"}
		if err := tx.Find(it); err != nil {
			return err
		}
		it.N = 99
		if err := tx.Update(it); err != nil {
			return err
		}
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatal(err)
	}
	if store.RowCount("item") != 1 {
		t.Error("aborted create leaked")
	}
	m, err := storeAutoGet(store, "item", "1")
	if err != nil {
		t.Fatal(err)
	}
	if m.Fields["n"].Int != 1 {
		t.Error("aborted update leaked")
	}
}

func TestIsExistsHelper(t *testing.T) {
	if !IsExists(sqlstore.ErrExists) {
		t.Error("IsExists misses the sentinel")
	}
	if IsExists(sqlstore.ErrNotFound) {
		t.Error("IsExists matches wrong sentinel")
	}
}

func TestTxContext(t *testing.T) {
	_, conn := newStore(t)
	c := NewContainer(itemRegistry(t), NewJDBCManager(conn))
	type ctxKey struct{}
	ctx := context.WithValue(context.Background(), ctxKey{}, "marker")
	err := c.Execute(ctx, func(tx *Tx) error {
		if tx.Context().Value(ctxKey{}) != "marker" {
			t.Error("transaction context not propagated")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// storeAutoGet reads a committed row with a short transaction.
func storeAutoGet(store *sqlstore.Store, table, id string) (memento.Memento, error) {
	tx, err := store.Begin(context.Background())
	if err != nil {
		return memento.Memento{}, err
	}
	defer tx.Abort()
	m, err := tx.Get(context.Background(), table, id)
	if err != nil {
		return memento.Memento{}, err
	}
	return m, tx.Commit()
}

package component

import (
	"context"
	"errors"
	"testing"
	"time"

	"edgeejb/internal/dbwire"
	"edgeejb/internal/memento"
	"edgeejb/internal/sqlstore"
	"edgeejb/internal/storeapi"
)

// TestChaosPanicAbortsTransaction: a panic inside application code must
// abort the transaction and release whatever the resource manager
// pinned at Begin. The JDBC manager pins a dbwire stream per
// transaction; pre-fix, Execute let the panic unwind without aborting,
// so every panicking transaction leaked one pinned connection (visible
// as monotonic NumConns growth) and kept its row locks.
func TestChaosPanicAbortsTransaction(t *testing.T) {
	store := sqlstore.New(sqlstore.WithLockTimeout(2 * time.Second))
	t.Cleanup(store.Close)
	store.Seed(memento.Memento{
		Key:    memento.Key{Table: "item", ID: "a"},
		Fields: memento.Fields{"owner": memento.String("x"), "n": memento.Int(1)},
	})
	srv := dbwire.NewServer(storeapi.Local(store))
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	client := dbwire.Dial(srv.Addr())
	t.Cleanup(func() { _ = client.Close() })

	c := NewContainer(itemRegistry(t), NewJDBCManager(client))
	ctx := context.Background()

	panicOnce := func() (recovered any) {
		defer func() { recovered = recover() }()
		_ = c.Execute(ctx, func(tx *Tx) error {
			it := &item{ID: "a"}
			if err := tx.Find(it); err != nil {
				return err
			}
			panic("application bug")
		})
		return nil
	}

	const rounds = 16
	for i := 0; i < rounds; i++ {
		if rec := panicOnce(); rec == nil {
			t.Fatal("panic did not propagate out of Execute")
		}
	}

	// Pinned streams must have been returned to the pool, not leaked
	// one per panic: allow the pooled pin plus a shared conn.
	if n := client.NumConns(); n > 3 {
		t.Fatalf("connections leaked across panicking transactions: %d open after %d panics", n, rounds)
	}

	// And the datastore must not hold the panicked transactions' locks:
	// a fresh pessimistic transaction on the same row must not time out.
	err := c.Execute(ctx, func(tx *Tx) error {
		it := &item{ID: "a"}
		return tx.Find(it)
	})
	if err != nil {
		t.Fatalf("post-panic transaction failed (leaked lock?): %v", err)
	}
}

// abortSpyTx records whether Abort ran; its Commit always fails.
type abortSpyTx struct {
	DataTx
	commitErr error
	aborted   bool
}

func (s *abortSpyTx) Commit(ctx context.Context) error { return s.commitErr }
func (s *abortSpyTx) Abort(ctx context.Context) error  { s.aborted = true; return nil }

type abortSpyRM struct {
	last *abortSpyTx
	err  error
}

func (rm *abortSpyRM) Begin(ctx context.Context) (DataTx, error) {
	rm.last = &abortSpyTx{commitErr: rm.err}
	return rm.last, nil
}
func (rm *abortSpyRM) Name() string { return "spy" }

// TestChaosCommitFailureAborts: a commit that fails for transport-level
// reasons must be followed by an abort, so a manager whose commit round
// trip died mid-flight still releases its pins.
func TestChaosCommitFailureAborts(t *testing.T) {
	rm := &abortSpyRM{err: errors.New("wire: connection reset")}
	c := NewContainer(itemRegistry(t), rm)
	err := c.Execute(context.Background(), func(tx *Tx) error { return nil })
	if err == nil {
		t.Fatal("failing commit reported success")
	}
	if !rm.last.aborted {
		t.Fatal("failed commit was not followed by an abort")
	}
}

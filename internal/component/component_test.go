package component

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	"edgeejb/internal/memento"
	"edgeejb/internal/sqlstore"
	"edgeejb/internal/storeapi"
)

// item is a minimal test entity.
type item struct {
	ID    string
	Owner string
	N     int64
}

var _ Entity = (*item)(nil)

func (i *item) PrimaryKey() memento.Key { return memento.Key{Table: "item", ID: i.ID} }

func (i *item) ToMemento() memento.Memento {
	return memento.Memento{
		Key: i.PrimaryKey(),
		Fields: memento.Fields{
			"owner": memento.String(i.Owner),
			"n":     memento.Int(i.N),
		},
	}
}

func (i *item) LoadMemento(m memento.Memento) error {
	if m.Key.Table != "item" {
		return fmt.Errorf("not an item: %s", m.Key)
	}
	i.ID = m.Key.ID
	i.Owner = m.Fields["owner"].Str
	i.N = m.Fields["n"].Int
	return nil
}

func itemRegistry(t *testing.T) *Registry {
	t.Helper()
	r, err := NewRegistry(Descriptor{Table: "item", New: func() Entity { return &item{} }})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// countingConn wraps a storeapi.Conn, counting every statement that
// would be a wire round trip (Begin, per-op, Commit/Abort, auto ops).
type countingConn struct {
	inner storeapi.Conn
	ops   atomic.Int64
}

func (c *countingConn) Begin(ctx context.Context) (storeapi.Txn, error) {
	c.ops.Add(1)
	txn, err := c.inner.Begin(ctx)
	if err != nil {
		return nil, err
	}
	return &countingTxn{inner: txn, ops: &c.ops}, nil
}

func (c *countingConn) AutoGet(ctx context.Context, table, id string) (storeapi.GetResult, error) {
	c.ops.Add(1)
	return c.inner.AutoGet(ctx, table, id)
}

func (c *countingConn) AutoQuery(ctx context.Context, q memento.Query) (storeapi.QueryResult, error) {
	c.ops.Add(1)
	return c.inner.AutoQuery(ctx, q)
}

func (c *countingConn) ApplyCommitSet(ctx context.Context, cs memento.CommitSet) (sqlstore.ApplyResult, error) {
	c.ops.Add(1)
	return c.inner.ApplyCommitSet(ctx, cs)
}

func (c *countingConn) ApplyCommitSets(ctx context.Context, sets []memento.CommitSet) ([]sqlstore.ApplySetResult, error) {
	c.ops.Add(1)
	return c.inner.ApplyCommitSets(ctx, sets)
}

func (c *countingConn) Subscribe(ctx context.Context) (<-chan sqlstore.Notice, func(), error) {
	return c.inner.Subscribe(ctx)
}

func (c *countingConn) Close() error { return c.inner.Close() }

type countingTxn struct {
	inner storeapi.Txn
	ops   *atomic.Int64
}

func (t *countingTxn) ID() uint64 { return t.inner.ID() }

func (t *countingTxn) Get(ctx context.Context, table, id string) (storeapi.GetResult, error) {
	t.ops.Add(1)
	return t.inner.Get(ctx, table, id)
}

func (t *countingTxn) GetForUpdate(ctx context.Context, table, id string) (storeapi.GetResult, error) {
	t.ops.Add(1)
	return t.inner.GetForUpdate(ctx, table, id)
}

func (t *countingTxn) Put(ctx context.Context, m memento.Memento) error {
	t.ops.Add(1)
	return t.inner.Put(ctx, m)
}

func (t *countingTxn) Insert(ctx context.Context, m memento.Memento) error {
	t.ops.Add(1)
	return t.inner.Insert(ctx, m)
}

func (t *countingTxn) Delete(ctx context.Context, table, id string) error {
	t.ops.Add(1)
	return t.inner.Delete(ctx, table, id)
}

func (t *countingTxn) Query(ctx context.Context, q memento.Query) (storeapi.QueryResult, error) {
	t.ops.Add(1)
	return t.inner.Query(ctx, q)
}

func (t *countingTxn) CheckVersion(ctx context.Context, key memento.Key, version uint64) error {
	t.ops.Add(1)
	return t.inner.CheckVersion(ctx, key, version)
}

func (t *countingTxn) CheckedPut(ctx context.Context, m memento.Memento) error {
	t.ops.Add(1)
	return t.inner.CheckedPut(ctx, m)
}

func (t *countingTxn) CheckedDelete(ctx context.Context, key memento.Key, version uint64) error {
	t.ops.Add(1)
	return t.inner.CheckedDelete(ctx, key, version)
}

func (t *countingTxn) Commit(ctx context.Context) error {
	t.ops.Add(1)
	return t.inner.Commit(ctx)
}

func (t *countingTxn) Abort(ctx context.Context) error {
	t.ops.Add(1)
	return t.inner.Abort(ctx)
}

func (t *countingTxn) ExecBatch(ctx context.Context, stmts []storeapi.Stmt) ([]storeapi.StmtResult, error) {
	if len(stmts) == 0 {
		return nil, nil
	}
	t.ops.Add(1)
	return storeapi.ExecBatch(ctx, t.inner, stmts)
}

func newStore(t *testing.T, items ...item) (*sqlstore.Store, *countingConn) {
	t.Helper()
	store := sqlstore.New()
	t.Cleanup(store.Close)
	for _, it := range items {
		store.Seed(it.ToMemento())
	}
	return store, &countingConn{inner: storeapi.Local(store)}
}

func TestRegistryValidation(t *testing.T) {
	if _, err := NewRegistry(Descriptor{Table: "", New: func() Entity { return &item{} }}); err == nil {
		t.Error("empty table accepted")
	}
	if _, err := NewRegistry(Descriptor{Table: "x", New: nil}); err == nil {
		t.Error("nil constructor accepted")
	}
	d := Descriptor{Table: "x", New: func() Entity { return &item{} }}
	if _, err := NewRegistry(d, d); err == nil {
		t.Error("duplicate table accepted")
	}
	r, err := NewRegistry(d)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Lookup("missing"); err == nil {
		t.Error("missing table lookup succeeded")
	}
}

func TestContainerExecuteCommit(t *testing.T) {
	_, conn := newStore(t, item{ID: "1", Owner: "a", N: 1})
	c := NewContainer(itemRegistry(t), NewJDBCManager(conn))
	ctx := context.Background()

	err := c.Execute(ctx, func(tx *Tx) error {
		it := &item{ID: "1"}
		if err := tx.Find(it); err != nil {
			return err
		}
		it.N = 5
		return tx.Update(it)
	})
	if err != nil {
		t.Fatal(err)
	}
	// Verify the write committed.
	err = c.Execute(ctx, func(tx *Tx) error {
		it := &item{ID: "1"}
		if err := tx.Find(it); err != nil {
			return err
		}
		if it.N != 5 {
			return fmt.Errorf("n = %d, want 5", it.N)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestContainerExecuteAbortOnError(t *testing.T) {
	_, conn := newStore(t, item{ID: "1", Owner: "a", N: 1})
	c := NewContainer(itemRegistry(t), NewJDBCManager(conn))
	ctx := context.Background()
	boom := errors.New("boom")

	err := c.Execute(ctx, func(tx *Tx) error {
		it := &item{ID: "1"}
		if err := tx.Find(it); err != nil {
			return err
		}
		it.N = 99
		if err := tx.Update(it); err != nil {
			return err
		}
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("got %v, want boom", err)
	}
	_ = c.Execute(ctx, func(tx *Tx) error {
		it := &item{ID: "1"}
		if err := tx.Find(it); err != nil {
			return err
		}
		if it.N != 1 {
			t.Errorf("aborted write leaked: n = %d", it.N)
		}
		return nil
	})
}

func TestContainerRollbackSentinel(t *testing.T) {
	_, conn := newStore(t, item{ID: "1", Owner: "a", N: 1})
	c := NewContainer(itemRegistry(t), NewJDBCManager(conn))
	err := c.Execute(context.Background(), func(tx *Tx) error {
		return ErrRollback
	})
	if err != nil {
		t.Fatalf("ErrRollback should not surface: %v", err)
	}
}

func TestFindWhereMaterializesEntities(t *testing.T) {
	_, conn := newStore(t,
		item{ID: "1", Owner: "a", N: 1},
		item{ID: "2", Owner: "a", N: 2},
		item{ID: "3", Owner: "b", N: 3},
	)
	c := NewContainer(itemRegistry(t), NewJDBCManager(conn))
	err := c.Execute(context.Background(), func(tx *Tx) error {
		ents, err := tx.FindWhere(memento.Query{
			Table: "item",
			Where: []memento.Predicate{memento.Where("owner", memento.String("a"))},
		})
		if err != nil {
			return err
		}
		if len(ents) != 2 {
			return fmt.Errorf("got %d entities, want 2", len(ents))
		}
		for _, e := range ents {
			if _, ok := e.(*item); !ok {
				return fmt.Errorf("wrong type %T", e)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCreateAndRemove(t *testing.T) {
	store, conn := newStore(t)
	c := NewContainer(itemRegistry(t), NewJDBCManager(conn))
	ctx := context.Background()

	if err := c.Execute(ctx, func(tx *Tx) error {
		return tx.Create(&item{ID: "n1", Owner: "x", N: 7})
	}); err != nil {
		t.Fatal(err)
	}
	if store.RowCount("item") != 1 {
		t.Fatal("create did not persist")
	}
	if err := c.Execute(ctx, func(tx *Tx) error {
		return tx.Remove(&item{ID: "n1"})
	}); err != nil {
		t.Fatal(err)
	}
	if store.RowCount("item") != 0 {
		t.Fatal("remove did not persist")
	}
}

func TestNotFoundSurfaces(t *testing.T) {
	_, conn := newStore(t)
	c := NewContainer(itemRegistry(t), NewJDBCManager(conn))
	err := c.Execute(context.Background(), func(tx *Tx) error {
		return tx.Find(&item{ID: "ghost"})
	})
	if !IsNotFound(err) {
		t.Fatalf("got %v, want not-found", err)
	}
}

// TestJDBCStatementCache: repeated Finds of the same bean in one
// transaction cost one Get — the hand-optimized behavior.
func TestJDBCStatementCache(t *testing.T) {
	_, conn := newStore(t, item{ID: "1", Owner: "a", N: 1})
	c := NewContainer(itemRegistry(t), NewJDBCManager(conn))

	before := conn.ops.Load()
	err := c.Execute(context.Background(), func(tx *Tx) error {
		for i := 0; i < 5; i++ {
			if err := tx.Find(&item{ID: "1"}); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// begin + 1 get + commit = 3 statements.
	if got := conn.ops.Load() - before; got != 3 {
		t.Errorf("JDBC repeated find cost %d statements, want 3", got)
	}
}

// TestBMPDoubleLoad: a single Find under BMP costs two Gets (finder
// existence check + ejbLoad) and an unconditional ejbStore at commit.
func TestBMPDoubleLoadAndUnconditionalStore(t *testing.T) {
	_, conn := newStore(t, item{ID: "1", Owner: "a", N: 1})
	c := NewContainer(itemRegistry(t), NewBMPManager(conn))

	before := conn.ops.Load()
	err := c.Execute(context.Background(), func(tx *Tx) error {
		return tx.Find(&item{ID: "1"}) // read-only access
	})
	if err != nil {
		t.Fatal(err)
	}
	// begin + get + get + put(ejbStore of a CLEAN bean) + commit = 5.
	if got := conn.ops.Load() - before; got != 5 {
		t.Errorf("BMP read-only find cost %d statements, want 5", got)
	}
}

// TestBMPFinderNPlusOne: a custom finder with N results costs 1 query +
// N ejbLoads (plus N ejbStores at commit).
func TestBMPFinderNPlusOne(t *testing.T) {
	const n = 4
	var items []item
	for i := 0; i < n; i++ {
		items = append(items, item{ID: fmt.Sprintf("%d", i), Owner: "a", N: int64(i)})
	}
	_, conn := newStore(t, items...)
	c := NewContainer(itemRegistry(t), NewBMPManager(conn))

	before := conn.ops.Load()
	err := c.Execute(context.Background(), func(tx *Tx) error {
		ents, err := tx.FindWhere(memento.Query{
			Table: "item",
			Where: []memento.Predicate{memento.Where("owner", memento.String("a"))},
		})
		if err != nil {
			return err
		}
		if len(ents) != n {
			return fmt.Errorf("got %d, want %d", len(ents), n)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// begin + query + N gets + N ejbStores + commit.
	want := int64(1 + 1 + n + n + 1)
	if got := conn.ops.Load() - before; got != want {
		t.Errorf("BMP finder cost %d statements, want %d", got, want)
	}
}

// TestJDBCFinderReusesSelect: the JDBC finder costs 1 query; later Finds
// of result rows are free.
func TestJDBCFinderReusesSelect(t *testing.T) {
	_, conn := newStore(t,
		item{ID: "1", Owner: "a", N: 1},
		item{ID: "2", Owner: "a", N: 2},
	)
	c := NewContainer(itemRegistry(t), NewJDBCManager(conn))

	before := conn.ops.Load()
	err := c.Execute(context.Background(), func(tx *Tx) error {
		if _, err := tx.FindWhere(memento.Query{
			Table: "item",
			Where: []memento.Predicate{memento.Where("owner", memento.String("a"))},
		}); err != nil {
			return err
		}
		// Re-reading a row from the result set must hit the statement
		// cache.
		return tx.Find(&item{ID: "1"})
	})
	if err != nil {
		t.Fatal(err)
	}
	// begin + query + commit = 3.
	if got := conn.ops.Load() - before; got != 3 {
		t.Errorf("JDBC finder+find cost %d statements, want 3", got)
	}
}

func TestExecuteRetryOnConflict(t *testing.T) {
	store, conn := newStore(t, item{ID: "1", Owner: "a", N: 0})
	c := NewContainer(itemRegistry(t), NewJDBCManager(conn))
	ctx := context.Background()

	attempts := 0
	err := c.ExecuteRetry(ctx, 3, func(tx *Tx) error {
		attempts++
		it := &item{ID: "1"}
		if err := tx.Find(it); err != nil {
			return err
		}
		if attempts == 1 {
			// Sabotage: bump the row underneath the transaction via an
			// optimistic apply, then fail with a synthetic conflict.
			return fmt.Errorf("synthetic: %w", sqlstore.ErrConflict)
		}
		it.N++
		return tx.Update(it)
	})
	if err != nil {
		t.Fatal(err)
	}
	if attempts != 2 {
		t.Errorf("attempts = %d, want 2", attempts)
	}
	_ = store
}

func TestExecuteRetryGivesUp(t *testing.T) {
	_, conn := newStore(t, item{ID: "1", Owner: "a", N: 0})
	c := NewContainer(itemRegistry(t), NewJDBCManager(conn))
	err := c.ExecuteRetry(context.Background(), 2, func(tx *Tx) error {
		return fmt.Errorf("always: %w", sqlstore.ErrConflict)
	})
	if !IsConflict(err) {
		t.Fatalf("got %v, want conflict", err)
	}
}

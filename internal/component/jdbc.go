package component

import (
	"context"
	"errors"
	"fmt"

	"edgeejb/internal/memento"
	"edgeejb/internal/storeapi"
)

// JDBCManager is the hand-optimized direct-access algorithm the paper
// includes "because JDBC implementations are commonly understood to
// provide better performance than higher-level implementations such as
// EJBs". It uses pessimistic datastore transactions; its optimization
// over the vanilla EJB path is a per-transaction statement cache, so
// each row is fetched at most once per transaction and only dirty rows
// are written back.
type JDBCManager struct {
	conn  storeapi.Conn
	batch bool
}

var _ ResourceManager = (*JDBCManager)(nil)

// NewJDBCManager builds a JDBC resource manager over a datastore handle
// (local or remote).
func NewJDBCManager(conn storeapi.Conn, opts ...ManagerOption) *JDBCManager {
	cfg := managerConfig{}
	for _, o := range opts {
		o(&cfg)
	}
	return &JDBCManager{conn: conn, batch: cfg.batch}
}

// Name implements ResourceManager.
func (m *JDBCManager) Name() string { return "jdbc" }

// Begin implements ResourceManager.
func (m *JDBCManager) Begin(ctx context.Context) (DataTx, error) {
	txn, err := m.conn.Begin(ctx)
	if err != nil {
		return nil, err
	}
	return &jdbcTx{
		txn:   txn,
		batch: m.batch,
		cache: make(map[memento.Key]memento.Memento),
		dirty: make(map[memento.Key]memento.Memento),
	}, nil
}

type jdbcTx struct {
	txn   storeapi.Txn
	batch bool
	cache map[memento.Key]memento.Memento // rows read or written this tx
	dirty map[memento.Key]memento.Memento // rows to UPDATE at commit
}

func (t *jdbcTx) Load(ctx context.Context, key memento.Key) (memento.Memento, error) {
	if m, ok := t.cache[key]; ok {
		return m.Clone(), nil
	}
	res, err := t.txn.Get(ctx, key.Table, key.ID)
	if err != nil {
		return memento.Memento{}, err
	}
	t.cache[key] = res.Mem.Clone()
	return res.Mem, nil
}

func (t *jdbcTx) Store(ctx context.Context, m memento.Memento) error {
	t.cache[m.Key] = m.Clone()
	t.dirty[m.Key] = m.Clone()
	return nil
}

func (t *jdbcTx) Create(ctx context.Context, m memento.Memento) error {
	if err := t.txn.Insert(ctx, m); err != nil {
		return err
	}
	t.cache[m.Key] = m.Clone()
	return nil
}

func (t *jdbcTx) Remove(ctx context.Context, key memento.Key) error {
	if err := t.txn.Delete(ctx, key.Table, key.ID); err != nil {
		return err
	}
	delete(t.cache, key)
	delete(t.dirty, key)
	return nil
}

func (t *jdbcTx) Query(ctx context.Context, q memento.Query) ([]memento.Memento, error) {
	res, err := t.txn.Query(ctx, q)
	if err != nil {
		return nil, err
	}
	// A hand-crafted implementation reuses the SELECT's rows directly
	// rather than re-fetching them one by one (contrast bmpTx.Query).
	for _, m := range res.Mems {
		if _, dirtied := t.dirty[m.Key]; !dirtied {
			t.cache[m.Key] = m.Clone()
		}
	}
	return res.Mems, nil
}

func (t *jdbcTx) Commit(ctx context.Context) error {
	if t.batch {
		// Write-back run + commit as one exchange.
		stmts := make([]storeapi.Stmt, 0, len(t.dirty)+1)
		for _, m := range t.dirty {
			stmts = append(stmts, storeapi.Stmt{Kind: storeapi.StmtPut, Mem: m})
		}
		stmts = append(stmts, storeapi.Stmt{Kind: storeapi.StmtCommit})
		results, err := storeapi.ExecBatch(ctx, t.txn, stmts)
		if err != nil {
			return err
		}
		for i, r := range results {
			if r.Err == nil || errors.Is(r.Err, storeapi.ErrStmtSkipped) {
				continue
			}
			if i < len(stmts)-1 {
				_ = t.txn.Abort(ctx)
				return fmt.Errorf("jdbc: write-back %s: %w", stmts[i].Mem.Key, r.Err)
			}
			return r.Err
		}
		return nil
	}
	for _, m := range t.dirty {
		if err := t.txn.Put(ctx, m); err != nil {
			_ = t.txn.Abort(ctx)
			return fmt.Errorf("jdbc: write-back %s: %w", m.Key, err)
		}
	}
	return t.txn.Commit(ctx)
}

func (t *jdbcTx) Abort(ctx context.Context) error {
	return t.txn.Abort(ctx)
}

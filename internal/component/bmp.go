package component

import (
	"context"
	"errors"
	"fmt"

	"edgeejb/internal/memento"
	"edgeejb/internal/storeapi"
)

// BMPManager is the "vanilla EJB" algorithm: non-cached entity beans
// with bean-managed persistence, as in Trade2's EJB-ALT mode. It is
// deliberately faithful to the classic BMP container behaviors that make
// the paper's vanilla-EJB curve the most latency-sensitive one
// (sensitivity 23.6 in ES/RDB):
//
//   - findByPrimaryKey performs its own existence query, and the
//     container then issues a separate ejbLoad before the first business
//     method — "BMP EJBs have difficulty caching the results of a
//     findByPrimaryKey operation, even though such results are typically
//     reused immediately" (§4.4). Two round trips per direct access.
//   - Custom finders return primary keys only; the container then
//     ejbLoads each result element individually (the classic N+1
//     selects).
//   - At commit the container calls ejbStore on every activated bean,
//     clean or dirty, because BMP gives it no dirty-tracking.
type BMPManager struct {
	conn  storeapi.Conn
	batch bool
}

var _ ResourceManager = (*BMPManager)(nil)

// NewBMPManager builds a vanilla-EJB resource manager over a datastore
// handle (local or remote).
func NewBMPManager(conn storeapi.Conn, opts ...ManagerOption) *BMPManager {
	cfg := managerConfig{}
	for _, o := range opts {
		o(&cfg)
	}
	return &BMPManager{conn: conn, batch: cfg.batch}
}

// Name implements ResourceManager.
func (m *BMPManager) Name() string { return "bmp" }

// Begin implements ResourceManager.
func (m *BMPManager) Begin(ctx context.Context) (DataTx, error) {
	txn, err := m.conn.Begin(ctx)
	if err != nil {
		return nil, err
	}
	return &bmpTx{
		txn:       txn,
		batch:     m.batch,
		activated: make(map[memento.Key]memento.Memento),
		removed:   make(map[memento.Key]struct{}),
	}, nil
}

type bmpTx struct {
	txn   storeapi.Txn
	batch bool
	// activated tracks beans activated in this transaction; each gets an
	// unconditional ejbStore at commit.
	activated map[memento.Key]memento.Memento
	removed   map[memento.Key]struct{}
}

func (t *bmpTx) Load(ctx context.Context, key memento.Key) (memento.Memento, error) {
	if t.batch {
		// Same two statements, pipelined into one exchange: the
		// container still can't skip either of them, but it can ship
		// them together.
		results, err := storeapi.ExecBatch(ctx, t.txn, []storeapi.Stmt{
			{Kind: storeapi.StmtGet, Table: key.Table, ID: key.ID},
			{Kind: storeapi.StmtGet, Table: key.Table, ID: key.ID},
		})
		if err != nil {
			return memento.Memento{}, err
		}
		if err := firstStmtErr(results); err != nil {
			return memento.Memento{}, err
		}
		m := results[1].Get.Mem
		t.activated[key] = m.Clone()
		delete(t.removed, key)
		return m, nil
	}
	// findByPrimaryKey: existence check (SELECT pk FROM ... WHERE pk=?).
	if _, err := t.txn.Get(ctx, key.Table, key.ID); err != nil {
		return memento.Memento{}, err
	}
	// ejbLoad: the container reloads the full row even though the finder
	// just touched it.
	res, err := t.txn.Get(ctx, key.Table, key.ID)
	if err != nil {
		return memento.Memento{}, err
	}
	t.activated[key] = res.Mem.Clone()
	delete(t.removed, key)
	return res.Mem, nil
}

func (t *bmpTx) Store(ctx context.Context, m memento.Memento) error {
	// BMP defers the actual UPDATE to ejbStore at commit; the container
	// only records the new state here.
	t.activated[m.Key] = m.Clone()
	return nil
}

func (t *bmpTx) Create(ctx context.Context, m memento.Memento) error {
	// ejbCreate issues the INSERT immediately.
	if err := t.txn.Insert(ctx, m); err != nil {
		return err
	}
	t.activated[m.Key] = m.Clone()
	delete(t.removed, m.Key)
	return nil
}

func (t *bmpTx) Remove(ctx context.Context, key memento.Key) error {
	// ejbRemove issues the DELETE immediately.
	if err := t.txn.Delete(ctx, key.Table, key.ID); err != nil {
		return err
	}
	delete(t.activated, key)
	t.removed[key] = struct{}{}
	return nil
}

func (t *bmpTx) Query(ctx context.Context, q memento.Query) ([]memento.Memento, error) {
	// The custom finder returns primary keys; the container then
	// activates (ejbLoads) each element of the result set individually.
	found, err := t.txn.Query(ctx, q)
	if err != nil {
		return nil, err
	}
	out := make([]memento.Memento, 0, len(found.Mems))
	if t.batch && len(found.Mems) > 0 {
		// The N+1 selects still happen, but the N ejbLoads travel as one
		// exchange instead of N round trips.
		stmts := make([]storeapi.Stmt, len(found.Mems))
		for i, f := range found.Mems {
			stmts[i] = storeapi.Stmt{Kind: storeapi.StmtGet, Table: f.Key.Table, ID: f.Key.ID}
		}
		results, err := storeapi.ExecBatch(ctx, t.txn, stmts)
		if err != nil {
			return nil, err
		}
		for i, r := range results {
			if r.Err != nil {
				return nil, fmt.Errorf("bmp: ejbLoad after finder %s: %w", found.Mems[i].Key, r.Err)
			}
			t.activated[r.Get.Mem.Key] = r.Get.Mem.Clone()
			out = append(out, r.Get.Mem)
		}
		return out, nil
	}
	for _, f := range found.Mems {
		res, err := t.txn.Get(ctx, f.Key.Table, f.Key.ID)
		if err != nil {
			return nil, fmt.Errorf("bmp: ejbLoad after finder %s: %w", f.Key, err)
		}
		t.activated[res.Mem.Key] = res.Mem.Clone()
		out = append(out, res.Mem)
	}
	return out, nil
}

func (t *bmpTx) Commit(ctx context.Context) error {
	if t.batch {
		// ejbStore run + commit as one exchange.
		stmts := make([]storeapi.Stmt, 0, len(t.activated)+1)
		for _, m := range t.activated {
			if _, gone := t.removed[m.Key]; gone {
				continue
			}
			stmts = append(stmts, storeapi.Stmt{Kind: storeapi.StmtPut, Mem: m})
		}
		stmts = append(stmts, storeapi.Stmt{Kind: storeapi.StmtCommit})
		results, err := storeapi.ExecBatch(ctx, t.txn, stmts)
		if err != nil {
			return err
		}
		for i, r := range results {
			if r.Err == nil || errors.Is(r.Err, storeapi.ErrStmtSkipped) {
				continue
			}
			if i < len(stmts)-1 {
				// An ejbStore failed; the commit never ran, so the
				// transaction must still be released.
				_ = t.txn.Abort(ctx)
				return fmt.Errorf("bmp: ejbStore %s: %w", stmts[i].Mem.Key, r.Err)
			}
			return r.Err
		}
		return nil
	}
	// ejbStore every activated bean, dirty or not.
	for _, m := range t.activated {
		if _, gone := t.removed[m.Key]; gone {
			continue
		}
		if err := t.txn.Put(ctx, m); err != nil {
			_ = t.txn.Abort(ctx)
			return fmt.Errorf("bmp: ejbStore %s: %w", m.Key, err)
		}
	}
	return t.txn.Commit(ctx)
}

func (t *bmpTx) Abort(ctx context.Context) error {
	return t.txn.Abort(ctx)
}

package component

import (
	"context"
	"testing"
	"time"

	"edgeejb/internal/dbwire"
	"edgeejb/internal/memento"
	"edgeejb/internal/sqlstore"
	"edgeejb/internal/storeapi"
)

// TestManagerBatchingReducesRoundTrips runs the same two-entity
// interaction through each pessimistic manager with batching off and
// on, against a real wire stack, and requires the batched run to cost
// strictly fewer round trips while producing the same rows.
func TestManagerBatchingReducesRoundTrips(t *testing.T) {
	newStack := func(t *testing.T) (*sqlstore.Store, string) {
		t.Helper()
		store := sqlstore.New(sqlstore.WithLockTimeout(2 * time.Second))
		t.Cleanup(store.Close)
		for _, id := range []string{"a", "b"} {
			store.Seed(memento.Memento{
				Key:    memento.Key{Table: "item", ID: id},
				Fields: memento.Fields{"owner": memento.String("x"), "n": memento.Int(1)},
			})
		}
		srv := dbwire.NewServer(storeapi.Local(store))
		if err := srv.Start("127.0.0.1:0"); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(srv.Close)
		return store, srv.Addr()
	}

	interaction := func(tx *Tx) error {
		for _, id := range []string{"a", "b"} {
			it := &item{ID: id}
			if err := tx.Find(it); err != nil {
				return err
			}
			it.N++
			if err := tx.Update(it); err != nil {
				return err
			}
		}
		return nil
	}

	managers := map[string]func(storeapi.Conn, ...ManagerOption) ResourceManager{
		"jdbc": func(c storeapi.Conn, o ...ManagerOption) ResourceManager { return NewJDBCManager(c, o...) },
		"bmp":  func(c storeapi.Conn, o ...ManagerOption) ResourceManager { return NewBMPManager(c, o...) },
	}
	for name, mk := range managers {
		t.Run(name, func(t *testing.T) {
			store, addr := newStack(t)
			run := func(opts ...ManagerOption) uint64 {
				t.Helper()
				client := dbwire.Dial(addr)
				t.Cleanup(func() { _ = client.Close() })
				c := NewContainer(itemRegistry(t), mk(client, opts...))
				before := client.RoundTrips()
				if err := c.Execute(context.Background(), interaction); err != nil {
					t.Fatalf("interaction: %v", err)
				}
				return client.RoundTrips() - before
			}

			serial := run()
			batched := run(WithBatching(true))
			if batched >= serial {
				t.Errorf("batched interaction cost %d round trips, serial %d — batching must win",
					batched, serial)
			}
			t.Logf("round trips: serial=%d batched=%d", serial, batched)

			// Both runs incremented both rows: 1 -> 2 -> 3.
			for _, id := range []string{"a", "b"} {
				res, err := storeapi.Local(store).AutoGet(context.Background(), "item", id)
				if err != nil {
					t.Fatal(err)
				}
				if res.Mem.Fields["n"].Int != 3 {
					t.Errorf("item %s n = %d, want 3", id, res.Mem.Fields["n"].Int)
				}
			}
		})
	}
}

// Package storeapi defines the datastore access interface shared by the
// local (in-process) store and the remote (wire) driver. Application
// servers are written against these interfaces so that the same resource
// managers run unchanged whether the database is colocated (Clients/RAS,
// the back-end server's store) or across the high-latency path (ES/RDB)
// — the deployment flexibility that lets the harness rearrange the
// tiers of Figures 3–5 without touching application code.
package storeapi

package storeapi

import (
	"context"
	"errors"
	"testing"

	"edgeejb/internal/memento"
	"edgeejb/internal/sqlstore"
)

// TestCountingConnCountsEveryStatement drives every Conn and Txn method
// once and verifies each counted exactly one statement.
func TestCountingConnCountsEveryStatement(t *testing.T) {
	store := sqlstore.New()
	defer store.Close()
	seedOne(store, "t", "r", 1)
	seedOne(store, "t", "u", 2)
	seedOne(store, "t", "d", 3)
	conn := NewCountingConn(Local(store))
	defer conn.Close()
	ctx := context.Background()

	steps := []struct {
		name string
		op   func(txn Txn) error
	}{
		{"Get", func(txn Txn) error { _, err := txn.Get(ctx, "t", "r"); return err }},
		{"GetForUpdate", func(txn Txn) error { _, err := txn.GetForUpdate(ctx, "t", "u"); return err }},
		{"Put", func(txn Txn) error {
			return txn.Put(ctx, memento.Memento{Key: memento.Key{Table: "t", ID: "u"},
				Fields: memento.Fields{"v": memento.Int(9)}})
		}},
		{"Insert", func(txn Txn) error {
			return txn.Insert(ctx, memento.Memento{Key: memento.Key{Table: "t", ID: "new"},
				Fields: memento.Fields{"v": memento.Int(4)}})
		}},
		{"Delete", func(txn Txn) error { return txn.Delete(ctx, "t", "d") }},
		{"Query", func(txn Txn) error { _, err := txn.Query(ctx, memento.Query{Table: "t"}); return err }},
		{"CheckVersion", func(txn Txn) error {
			return txn.CheckVersion(ctx, memento.Key{Table: "t", ID: "r"}, 1)
		}},
		{"CheckedPut", func(txn Txn) error {
			return txn.CheckedPut(ctx, memento.Memento{Key: memento.Key{Table: "t", ID: "r"},
				Version: 1, Fields: memento.Fields{"v": memento.Int(8)}})
		}},
	}

	txn, err := conn.Begin(ctx) // +1
	if err != nil {
		t.Fatal(err)
	}
	if txn.ID() == 0 {
		t.Error("counting txn hides the underlying id")
	}
	want := uint64(1)
	for _, step := range steps {
		if err := step.op(txn); err != nil {
			t.Fatalf("%s: %v", step.name, err)
		}
		want++
		if got := conn.Ops(); got != want {
			t.Fatalf("after %s: ops = %d, want %d", step.name, got, want)
		}
	}
	if err := txn.Commit(ctx); err != nil { // +1
		t.Fatal(err)
	}
	want++
	if got := conn.Ops(); got != want {
		t.Fatalf("after commit: ops = %d, want %d", conn.Ops(), want)
	}

	// CheckedDelete + Abort on a second transaction.
	txn2, err := conn.Begin(ctx)
	if err != nil {
		t.Fatal(err)
	}
	v, err := store.CurrentVersion(memento.Key{Table: "t", ID: "new"})
	if err != nil {
		t.Fatal(err)
	}
	if err := txn2.CheckedDelete(ctx, memento.Key{Table: "t", ID: "new"}, v); err != nil {
		t.Fatal(err)
	}
	if err := txn2.Abort(ctx); err != nil {
		t.Fatal(err)
	}
	want += 3 // begin + checkedDelete + abort
	if got := conn.Ops(); got != want {
		t.Fatalf("after abort: ops = %d, want %d", conn.Ops(), want)
	}

	// Auto ops and ApplyCommitSet count one each.
	if _, err := conn.AutoGet(ctx, "t", "r"); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.AutoQuery(ctx, memento.Query{Table: "t"}); err != nil {
		t.Fatal(err)
	}
	v, err = store.CurrentVersion(memento.Key{Table: "t", ID: "r"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.ApplyCommitSet(ctx, memento.CommitSet{
		Reads: []memento.ReadProof{{Key: memento.Key{Table: "t", ID: "r"}, Version: v}},
	}); err != nil {
		t.Fatal(err)
	}
	want += 3
	if got := conn.Ops(); got != want {
		t.Fatalf("after auto ops: ops = %d, want %d", conn.Ops(), want)
	}

	// Subscribe is a push stream, never a counted statement.
	ch, cancel, err := conn.Subscribe(ctx)
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	<-ch
	if got := conn.Ops(); got != want {
		t.Errorf("subscribe counted as a statement: %d", got)
	}

	conn.ResetOps()
	if conn.Ops() != 0 {
		t.Error("ResetOps did not zero the counter")
	}
}

// TestLocalTxnErrorPaths covers the local adapter's pass-through of
// store errors.
func TestLocalTxnErrorPaths(t *testing.T) {
	store := sqlstore.New()
	defer store.Close()
	seedOne(store, "t", "1", 1)
	conn := Local(store)
	ctx := context.Background()

	txn, err := conn.Begin(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer txn.Abort(ctx)
	if _, err := txn.GetForUpdate(ctx, "t", "missing"); !errors.Is(err, sqlstore.ErrNotFound) {
		t.Errorf("GetForUpdate missing: %v", err)
	}
	if err := txn.Insert(ctx, memento.Memento{Key: memento.Key{Table: "t", ID: "1"}}); !errors.Is(err, sqlstore.ErrExists) {
		t.Errorf("Insert existing: %v", err)
	}
	if err := txn.Delete(ctx, "t", "missing"); !errors.Is(err, sqlstore.ErrNotFound) {
		t.Errorf("Delete missing: %v", err)
	}
	if err := txn.CheckedPut(ctx, memento.Memento{
		Key: memento.Key{Table: "t", ID: "1"}, Version: 99,
	}); !errors.Is(err, sqlstore.ErrConflict) {
		t.Errorf("stale CheckedPut: %v", err)
	}
	if err := txn.CheckedDelete(ctx, memento.Key{Table: "t", ID: "1"}, 99); !errors.Is(err, sqlstore.ErrConflict) {
		t.Errorf("stale CheckedDelete: %v", err)
	}
}

// TestLocalAutoOpsReleaseOnError: a failing autocommit read must leave
// no transaction or lock behind.
func TestLocalAutoOpsReleaseOnError(t *testing.T) {
	store := sqlstore.New()
	defer store.Close()
	conn := Local(store)
	ctx := context.Background()

	if _, err := conn.AutoGet(ctx, "t", "missing"); !errors.Is(err, sqlstore.ErrNotFound) {
		t.Fatalf("got %v", err)
	}
	st := store.Stats()
	if st.Begins != st.Commits+st.Aborts {
		t.Errorf("transaction leaked: %+v", st)
	}
}

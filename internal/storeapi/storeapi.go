package storeapi

import (
	"context"

	"edgeejb/internal/memento"
	"edgeejb/internal/obs"
	"edgeejb/internal/sqlstore"
)

// GetResult carries one row read plus the footprint the access covered.
// For a key read the footprint is exactly that key, but carrying it on
// the result keeps every read path declaration-driven: callers
// accumulate what they observed from the results themselves rather
// than re-deriving it from the arguments.
type GetResult struct {
	Mem memento.Memento
	FP  memento.Footprint
}

// QueryResult carries a finder's rows plus the footprint the query
// covered: the normalized predicate descriptor (guarding result-set
// membership) and the keys of the returned rows (proven individually
// at commit time). Edge caches key finder results on the descriptor
// and invalidate on footprint overlap with committed write sets.
type QueryResult struct {
	Mems []memento.Memento
	FP   memento.Footprint
}

// Txn is one datastore transaction. Implementations: the local adapter
// in this package (no network) and dbwire's remote transaction (one
// round trip per call — the property that makes per-statement access
// latency-sensitive).
type Txn interface {
	// ID returns the datastore-assigned transaction identifier. It is
	// stable across tiers: a transaction driven through the back-end
	// server reports the database server's identifier, so commit notices
	// can be matched against a cache's own commits.
	ID() uint64
	// Get reads a row under a shared lock; sqlstore.ErrNotFound if absent.
	Get(ctx context.Context, table, id string) (GetResult, error)
	// GetForUpdate reads a row under an exclusive lock.
	GetForUpdate(ctx context.Context, table, id string) (GetResult, error)
	// Put upserts a row (pessimistic; version assigned at commit).
	Put(ctx context.Context, m memento.Memento) error
	// Insert creates a row; sqlstore.ErrExists if present.
	Insert(ctx context.Context, m memento.Memento) error
	// Delete removes a row; sqlstore.ErrNotFound if absent.
	Delete(ctx context.Context, table, id string) error
	// Query runs a predicate query under a table shared lock.
	Query(ctx context.Context, q memento.Query) (QueryResult, error)
	// CheckVersion verifies a row is still at version (0 = still absent).
	CheckVersion(ctx context.Context, key memento.Key, version uint64) error
	// CheckedPut updates a row iff it is still at m.Version (0 = insert).
	CheckedPut(ctx context.Context, m memento.Memento) error
	// CheckedDelete removes a row iff it is still at version.
	CheckedDelete(ctx context.Context, key memento.Key, version uint64) error
	// Commit atomically installs buffered writes and releases locks.
	Commit(ctx context.Context) error
	// Abort discards buffered writes and releases locks.
	Abort(ctx context.Context) error
}

// Conn is a handle to a datastore (local or remote).
type Conn interface {
	// Begin starts a transaction.
	Begin(ctx context.Context) (Txn, error)
	// AutoGet reads one row in an autocommit transaction: the "separate
	// (non-nested) short transaction ... committed immediately after the
	// access completes" that the cache runtime uses for misses (§2.3).
	// On remote implementations it costs exactly one round trip.
	AutoGet(ctx context.Context, table, id string) (GetResult, error)
	// AutoQuery runs one predicate query in an autocommit transaction —
	// one round trip on remote implementations.
	AutoQuery(ctx context.Context, q memento.Query) (QueryResult, error)
	// ApplyCommitSet validates and applies a whole optimistic commit set
	// atomically — a single round trip on remote implementations.
	ApplyCommitSet(ctx context.Context, cs memento.CommitSet) (sqlstore.ApplyResult, error)
	// ApplyCommitSets applies several independent commit sets in one
	// exchange — a single round trip on remote implementations that
	// support it (older peers fall back to one trip per set). Each set
	// succeeds or fails on its own; the error return is reserved for
	// transport-level failures affecting the whole group.
	ApplyCommitSets(ctx context.Context, sets []memento.CommitSet) ([]sqlstore.ApplySetResult, error)
	// Subscribe streams commit notices until cancel is called; the
	// channel closes on cancel or connection loss.
	Subscribe(ctx context.Context) (<-chan sqlstore.Notice, func(), error)
	// Close releases the handle's resources.
	Close() error
}

// Preparer is the optional two-phase-commit participant surface a Conn
// may expose alongside the one-shot ApplyCommitSet path. The shard
// router type-asserts for it when a commit set spans several shards;
// connections to peers that predate the prepare ops simply don't
// implement it (dbwire's client does, but its server answers unknown-op
// for old backends, which the router surfaces as a conflict).
type Preparer interface {
	// Prepare validates a commit sub-set and holds its locks under gid
	// until CommitPrepared or AbortPrepared decides it (or the
	// participant's presumed-abort TTL expires). An error is a no vote:
	// nothing is held and the coordinator must abort the other
	// participants.
	Prepare(ctx context.Context, gid string, cs memento.CommitSet) error
	// CommitPrepared installs the writes prepared under gid. An unknown
	// gid (expired or never prepared) fails with an error matching
	// sqlstore.ErrConflict.
	CommitPrepared(ctx context.Context, gid string) (sqlstore.ApplyResult, error)
	// AbortPrepared discards the transaction prepared under gid.
	// Aborting an unknown gid succeeds (presumed abort already did it).
	AbortPrepared(ctx context.Context, gid string) error
}

// local adapts an in-process *sqlstore.Store to Conn. Every operation
// records a "sqlstore.<op>" trace span: the adapter only ever runs in
// the process that owns the store — the database tier — so these spans
// give assembled traces their db-tier leaves, one per statement. A
// statement-by-statement commit (the pessimistic algorithms, or the
// back-end's optimistic loop) therefore renders as a run of db spans,
// one per wire round trip — the per-statement latency amplification the
// paper's Figure 7 argues about, visible in a waterfall.
type local struct {
	store *sqlstore.Store
}

// Local wraps an in-process store as a Conn. Closing the Conn does not
// close the underlying store (the store may be shared).
func Local(s *sqlstore.Store) Conn { return &local{store: s} }

func (l *local) Begin(ctx context.Context) (Txn, error) {
	ctx, sp := obs.StartSpan(ctx, "sqlstore.begin")
	defer sp.End()
	tx, err := l.store.Begin(ctx)
	if err != nil {
		return nil, err
	}
	return &localTxn{tx: tx}, nil
}

func (l *local) ApplyCommitSet(ctx context.Context, cs memento.CommitSet) (sqlstore.ApplyResult, error) {
	return l.store.ApplyCommitSet(ctx, cs)
}

func (l *local) ApplyCommitSets(ctx context.Context, sets []memento.CommitSet) ([]sqlstore.ApplySetResult, error) {
	return l.store.ApplyCommitSets(ctx, sets), nil
}

func (l *local) AutoGet(ctx context.Context, table, id string) (GetResult, error) {
	ctx, sp := obs.StartSpan(ctx, "sqlstore.autoget")
	defer sp.End()
	tx, err := l.store.Begin(ctx)
	if err != nil {
		return GetResult{}, err
	}
	m, err := tx.Get(ctx, table, id)
	if err != nil {
		tx.Abort()
		return GetResult{}, err
	}
	if err := tx.Commit(); err != nil {
		return GetResult{}, err
	}
	return GetResult{Mem: m, FP: memento.KeyFootprint(memento.Key{Table: table, ID: id})}, nil
}

func (l *local) AutoQuery(ctx context.Context, q memento.Query) (QueryResult, error) {
	ctx, sp := obs.StartSpan(ctx, "sqlstore.autoquery")
	defer sp.End()
	tx, err := l.store.Begin(ctx)
	if err != nil {
		return QueryResult{}, err
	}
	mems, err := tx.Query(ctx, q)
	if err != nil {
		tx.Abort()
		return QueryResult{}, err
	}
	if err := tx.Commit(); err != nil {
		return QueryResult{}, err
	}
	return QueryResult{Mems: mems, FP: memento.QueryFootprint(q, mems)}, nil
}

func (l *local) Prepare(ctx context.Context, gid string, cs memento.CommitSet) error {
	return l.store.Prepare(ctx, gid, cs)
}

func (l *local) CommitPrepared(ctx context.Context, gid string) (sqlstore.ApplyResult, error) {
	return l.store.CommitPrepared(ctx, gid)
}

func (l *local) AbortPrepared(ctx context.Context, gid string) error {
	return l.store.AbortPrepared(ctx, gid)
}

var _ Preparer = (*local)(nil)

func (l *local) Subscribe(ctx context.Context) (<-chan sqlstore.Notice, func(), error) {
	ch, cancel := l.store.Subscribe(0)
	return ch, cancel, nil
}

func (l *local) Close() error { return nil }

type localTxn struct {
	tx *sqlstore.Tx
}

func (t *localTxn) ID() uint64 { return t.tx.ID() }

func (t *localTxn) Get(ctx context.Context, table, id string) (GetResult, error) {
	ctx, sp := obs.StartSpan(ctx, "sqlstore.get")
	defer sp.End()
	m, err := t.tx.Get(ctx, table, id)
	if err != nil {
		return GetResult{}, err
	}
	return GetResult{Mem: m, FP: memento.KeyFootprint(memento.Key{Table: table, ID: id})}, nil
}

func (t *localTxn) GetForUpdate(ctx context.Context, table, id string) (GetResult, error) {
	ctx, sp := obs.StartSpan(ctx, "sqlstore.get_for_update")
	defer sp.End()
	m, err := t.tx.GetForUpdate(ctx, table, id)
	if err != nil {
		return GetResult{}, err
	}
	return GetResult{Mem: m, FP: memento.KeyFootprint(memento.Key{Table: table, ID: id})}, nil
}

func (t *localTxn) Put(ctx context.Context, m memento.Memento) error {
	ctx, sp := obs.StartSpan(ctx, "sqlstore.put")
	defer sp.End()
	return t.tx.Put(ctx, m)
}

func (t *localTxn) Insert(ctx context.Context, m memento.Memento) error {
	ctx, sp := obs.StartSpan(ctx, "sqlstore.insert")
	defer sp.End()
	return t.tx.Insert(ctx, m)
}

func (t *localTxn) Delete(ctx context.Context, table, id string) error {
	ctx, sp := obs.StartSpan(ctx, "sqlstore.delete")
	defer sp.End()
	return t.tx.Delete(ctx, table, id)
}

func (t *localTxn) Query(ctx context.Context, q memento.Query) (QueryResult, error) {
	ctx, sp := obs.StartSpan(ctx, "sqlstore.query")
	defer sp.End()
	mems, err := t.tx.Query(ctx, q)
	if err != nil {
		return QueryResult{}, err
	}
	return QueryResult{Mems: mems, FP: memento.QueryFootprint(q, mems)}, nil
}

func (t *localTxn) CheckVersion(ctx context.Context, key memento.Key, version uint64) error {
	ctx, sp := obs.StartSpan(ctx, "sqlstore.check_version")
	defer sp.End()
	return t.tx.CheckVersion(ctx, key, version)
}

func (t *localTxn) CheckedPut(ctx context.Context, m memento.Memento) error {
	ctx, sp := obs.StartSpan(ctx, "sqlstore.checked_put")
	defer sp.End()
	return t.tx.CheckedPut(ctx, m)
}

func (t *localTxn) CheckedDelete(ctx context.Context, key memento.Key, version uint64) error {
	ctx, sp := obs.StartSpan(ctx, "sqlstore.checked_delete")
	defer sp.End()
	return t.tx.CheckedDelete(ctx, key, version)
}

func (t *localTxn) Commit(ctx context.Context) error {
	_, sp := obs.StartSpan(ctx, "sqlstore.commit_tx")
	defer sp.End()
	return t.tx.Commit()
}

func (t *localTxn) Abort(ctx context.Context) error {
	t.tx.Abort()
	return nil
}

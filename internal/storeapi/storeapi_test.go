package storeapi

import (
	"context"
	"errors"
	"testing"

	"edgeejb/internal/memento"
	"edgeejb/internal/sqlstore"
)

func seedOne(s *sqlstore.Store, table, id string, v int64) {
	s.Seed(memento.Memento{
		Key:    memento.Key{Table: table, ID: id},
		Fields: memento.Fields{"v": memento.Int(v)},
	})
}

func TestLocalTxnLifecycle(t *testing.T) {
	store := sqlstore.New()
	defer store.Close()
	seedOne(store, "t", "1", 10)
	conn := Local(store)
	defer conn.Close()
	ctx := context.Background()

	txn, err := conn.Begin(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if txn.ID() == 0 {
		t.Error("local txn should expose the store transaction id")
	}
	res, err := txn.Get(ctx, "t", "1")
	if err != nil {
		t.Fatal(err)
	}
	if !res.FP.CoversKey(memento.Key{Table: "t", ID: "1"}) {
		t.Errorf("Get footprint %v does not cover the key", res.FP)
	}
	m := res.Mem
	m.Fields["v"] = memento.Int(11)
	if err := txn.Put(ctx, m); err != nil {
		t.Fatal(err)
	}
	if err := txn.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	if v, _ := store.CurrentVersion(memento.Key{Table: "t", ID: "1"}); v != 2 {
		t.Errorf("version = %d, want 2", v)
	}
}

func TestLocalAutoGet(t *testing.T) {
	store := sqlstore.New()
	defer store.Close()
	seedOne(store, "t", "1", 10)
	conn := Local(store)
	ctx := context.Background()

	res, err := conn.AutoGet(ctx, "t", "1")
	if err != nil {
		t.Fatal(err)
	}
	if res.Mem.Fields["v"].Int != 10 {
		t.Errorf("v = %d, want 10", res.Mem.Fields["v"].Int)
	}
	if _, err := conn.AutoGet(ctx, "t", "missing"); !errors.Is(err, sqlstore.ErrNotFound) {
		t.Fatalf("got %v, want ErrNotFound", err)
	}
	// The autocommit transaction must not leak locks or transactions.
	st := store.Stats()
	if st.Begins != st.Commits+st.Aborts {
		t.Errorf("leaked transactions: %+v", st)
	}
}

func TestLocalAutoQuery(t *testing.T) {
	store := sqlstore.New()
	defer store.Close()
	seedOne(store, "t", "1", 1)
	seedOne(store, "t", "2", 2)
	conn := Local(store)
	ctx := context.Background()

	qres, err := conn.AutoQuery(ctx, memento.Query{Table: "t"})
	if err != nil {
		t.Fatal(err)
	}
	if len(qres.Mems) != 2 {
		t.Fatalf("got %d rows, want 2", len(qres.Mems))
	}
	if len(qres.FP.Queries) != 1 || len(qres.FP.Keys) != 2 {
		t.Errorf("AutoQuery footprint = %v, want 1 query + 2 keys", qres.FP)
	}
	st := store.Stats()
	if st.Begins != st.Commits+st.Aborts {
		t.Errorf("leaked transactions: %+v", st)
	}
}

func TestLocalApplyCommitSetAndSubscribe(t *testing.T) {
	store := sqlstore.New()
	defer store.Close()
	seedOne(store, "t", "1", 1)
	conn := Local(store)
	ctx := context.Background()

	ch, cancel, err := conn.Subscribe(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()

	res, err := conn.ApplyCommitSet(ctx, memento.CommitSet{
		Writes: []memento.Memento{{
			Key:     memento.Key{Table: "t", ID: "1"},
			Version: 1,
			Fields:  memento.Fields{"v": memento.Int(2)},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	n := <-ch
	if n.TxID != res.TxID {
		t.Errorf("notice TxID = %d, want %d", n.TxID, res.TxID)
	}
}

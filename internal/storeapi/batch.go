package storeapi

import (
	"context"
	"errors"
	"fmt"

	"edgeejb/internal/memento"
)

// StmtKind enumerates the statement types a batch can carry — one per
// Txn method, so a component can ship any statement sequence it would
// otherwise issue call by call.
type StmtKind uint8

// Batchable statement kinds.
const (
	StmtGet StmtKind = iota + 1
	StmtGetForUpdate
	StmtQuery
	StmtPut
	StmtInsert
	StmtDelete
	StmtCheckVersion
	StmtCheckedPut
	StmtCheckedDelete
	StmtCommit
	StmtAbort
)

// Stmt is one statement of a batch. Fields beyond Kind are populated
// according to the statement, mirroring the corresponding Txn method's
// arguments.
type Stmt struct {
	Kind    StmtKind
	Table   string
	ID      string
	Key     memento.Key
	Version uint64
	Mem     memento.Memento
	Query   memento.Query
}

// StmtResult is one statement's outcome, positionally matched to the
// batch: Get for StmtGet/StmtGetForUpdate, Q for StmtQuery, Err for any
// statement that failed or was skipped.
type StmtResult struct {
	Get GetResult
	Q   QueryResult
	Err error
}

// ErrStmtSkipped marks the statements after a batch's first failure:
// batches execute sequentially and stop at the first error, exactly as
// the equivalent call-by-call sequence would.
var ErrStmtSkipped = errors.New("storeapi: statement skipped after earlier batch failure")

// BatchTxn is implemented by transactions that can execute several
// statements in one exchange — dbwire's remote transaction ships the
// whole batch as one frame (one round trip instead of len(stmts)).
// Semantics are identical to issuing the statements one by one:
// sequential execution, stop at the first error, later statements
// reported as ErrStmtSkipped.
type BatchTxn interface {
	ExecBatch(ctx context.Context, stmts []Stmt) ([]StmtResult, error)
}

// ExecBatch executes stmts on txn, using the transaction's native batch
// support when it has any and falling back to the equivalent serial
// calls otherwise — so components can batch unconditionally and still
// run against local or older transactions. The error return is reserved
// for whole-batch (transport-level) failures; per-statement outcomes
// are in the results.
func ExecBatch(ctx context.Context, txn Txn, stmts []Stmt) ([]StmtResult, error) {
	if len(stmts) == 0 {
		return nil, nil
	}
	if bt, ok := txn.(BatchTxn); ok {
		return bt.ExecBatch(ctx, stmts)
	}
	return execSerial(ctx, txn, stmts)
}

// ExecSerial executes stmts one call at a time — the reference
// semantics every batch implementation must match. Exposed so a remote
// transaction that discovers its peer predates batching can fall back
// to the exact serial behaviour through its own per-statement methods.
func ExecSerial(ctx context.Context, txn Txn, stmts []Stmt) ([]StmtResult, error) {
	return execSerial(ctx, txn, stmts)
}

// execSerial is the reference semantics of a batch: one call per
// statement, stopping at the first failure.
func execSerial(ctx context.Context, txn Txn, stmts []Stmt) ([]StmtResult, error) {
	out := make([]StmtResult, len(stmts))
	for i := range stmts {
		out[i] = execOne(ctx, txn, stmts[i])
		if out[i].Err != nil {
			for j := i + 1; j < len(stmts); j++ {
				out[j].Err = ErrStmtSkipped
			}
			break
		}
	}
	return out, nil
}

func execOne(ctx context.Context, txn Txn, st Stmt) StmtResult {
	var r StmtResult
	switch st.Kind {
	case StmtGet:
		r.Get, r.Err = txn.Get(ctx, st.Table, st.ID)
	case StmtGetForUpdate:
		r.Get, r.Err = txn.GetForUpdate(ctx, st.Table, st.ID)
	case StmtQuery:
		r.Q, r.Err = txn.Query(ctx, st.Query)
	case StmtPut:
		r.Err = txn.Put(ctx, st.Mem)
	case StmtInsert:
		r.Err = txn.Insert(ctx, st.Mem)
	case StmtDelete:
		r.Err = txn.Delete(ctx, st.Table, st.ID)
	case StmtCheckVersion:
		r.Err = txn.CheckVersion(ctx, st.Key, st.Version)
	case StmtCheckedPut:
		r.Err = txn.CheckedPut(ctx, st.Mem)
	case StmtCheckedDelete:
		r.Err = txn.CheckedDelete(ctx, st.Key, st.Version)
	case StmtCommit:
		r.Err = txn.Commit(ctx)
	case StmtAbort:
		r.Err = txn.Abort(ctx)
	default:
		r.Err = fmt.Errorf("storeapi: unknown statement kind %d", st.Kind)
	}
	return r
}

package storeapi

import (
	"context"
	"errors"
	"sync/atomic"

	"edgeejb/internal/memento"
	"edgeejb/internal/sqlstore"
)

// CountingConn wraps a Conn and counts every statement that would be a
// wire round trip on a remote implementation: Begin, each transaction
// operation, Commit/Abort, the auto operations, and ApplyCommitSet.
// The evaluation uses it to verify the per-algorithm access counts that
// drive the paper's latency sensitivities without standing up a network.
type CountingConn struct {
	inner Conn
	ops   atomic.Uint64
}

var _ Conn = (*CountingConn)(nil)

// NewCountingConn wraps conn.
func NewCountingConn(conn Conn) *CountingConn {
	return &CountingConn{inner: conn}
}

// Ops returns the number of statements issued so far.
func (c *CountingConn) Ops() uint64 { return c.ops.Load() }

// ResetOps zeroes the statement counter.
func (c *CountingConn) ResetOps() { c.ops.Store(0) }

// Begin implements Conn.
func (c *CountingConn) Begin(ctx context.Context) (Txn, error) {
	c.ops.Add(1)
	txn, err := c.inner.Begin(ctx)
	if err != nil {
		return nil, err
	}
	return &countingTxn{inner: txn, ops: &c.ops}, nil
}

// AutoGet implements Conn.
func (c *CountingConn) AutoGet(ctx context.Context, table, id string) (GetResult, error) {
	c.ops.Add(1)
	return c.inner.AutoGet(ctx, table, id)
}

// AutoQuery implements Conn.
func (c *CountingConn) AutoQuery(ctx context.Context, q memento.Query) (QueryResult, error) {
	c.ops.Add(1)
	return c.inner.AutoQuery(ctx, q)
}

// ApplyCommitSet implements Conn.
func (c *CountingConn) ApplyCommitSet(ctx context.Context, cs memento.CommitSet) (sqlstore.ApplyResult, error) {
	c.ops.Add(1)
	return c.inner.ApplyCommitSet(ctx, cs)
}

// ApplyCommitSets implements Conn. A grouped apply is one exchange on a
// remote implementation, so it counts one op regardless of how many
// sets it carries.
func (c *CountingConn) ApplyCommitSets(ctx context.Context, sets []memento.CommitSet) ([]sqlstore.ApplySetResult, error) {
	c.ops.Add(1)
	return c.inner.ApplyCommitSets(ctx, sets)
}

// Prepare implements Preparer: one exchange, one op. When the wrapped
// Conn has no prepare support the call fails — the counting wrapper
// keeps the optional interface visible but cannot add the capability.
func (c *CountingConn) Prepare(ctx context.Context, gid string, cs memento.CommitSet) error {
	c.ops.Add(1)
	p, ok := c.inner.(Preparer)
	if !ok {
		return errNoPrepare
	}
	return p.Prepare(ctx, gid, cs)
}

// CommitPrepared implements Preparer: one exchange, one op.
func (c *CountingConn) CommitPrepared(ctx context.Context, gid string) (sqlstore.ApplyResult, error) {
	c.ops.Add(1)
	p, ok := c.inner.(Preparer)
	if !ok {
		return sqlstore.ApplyResult{}, errNoPrepare
	}
	return p.CommitPrepared(ctx, gid)
}

// AbortPrepared implements Preparer: one exchange, one op.
func (c *CountingConn) AbortPrepared(ctx context.Context, gid string) error {
	c.ops.Add(1)
	p, ok := c.inner.(Preparer)
	if !ok {
		return errNoPrepare
	}
	return p.AbortPrepared(ctx, gid)
}

var errNoPrepare = errors.New("storeapi: wrapped Conn does not support prepare")

var _ Preparer = (*CountingConn)(nil)

// Subscribe implements Conn. Subscriptions are push streams, not
// request/response statements, so they are not counted.
func (c *CountingConn) Subscribe(ctx context.Context) (<-chan sqlstore.Notice, func(), error) {
	return c.inner.Subscribe(ctx)
}

// Close implements Conn.
func (c *CountingConn) Close() error { return c.inner.Close() }

type countingTxn struct {
	inner Txn
	ops   *atomic.Uint64
}

func (t *countingTxn) ID() uint64 { return t.inner.ID() }

func (t *countingTxn) Get(ctx context.Context, table, id string) (GetResult, error) {
	t.ops.Add(1)
	return t.inner.Get(ctx, table, id)
}

func (t *countingTxn) GetForUpdate(ctx context.Context, table, id string) (GetResult, error) {
	t.ops.Add(1)
	return t.inner.GetForUpdate(ctx, table, id)
}

func (t *countingTxn) Put(ctx context.Context, m memento.Memento) error {
	t.ops.Add(1)
	return t.inner.Put(ctx, m)
}

func (t *countingTxn) Insert(ctx context.Context, m memento.Memento) error {
	t.ops.Add(1)
	return t.inner.Insert(ctx, m)
}

func (t *countingTxn) Delete(ctx context.Context, table, id string) error {
	t.ops.Add(1)
	return t.inner.Delete(ctx, table, id)
}

func (t *countingTxn) Query(ctx context.Context, q memento.Query) (QueryResult, error) {
	t.ops.Add(1)
	return t.inner.Query(ctx, q)
}

func (t *countingTxn) CheckVersion(ctx context.Context, key memento.Key, version uint64) error {
	t.ops.Add(1)
	return t.inner.CheckVersion(ctx, key, version)
}

func (t *countingTxn) CheckedPut(ctx context.Context, m memento.Memento) error {
	t.ops.Add(1)
	return t.inner.CheckedPut(ctx, m)
}

func (t *countingTxn) CheckedDelete(ctx context.Context, key memento.Key, version uint64) error {
	t.ops.Add(1)
	return t.inner.CheckedDelete(ctx, key, version)
}

func (t *countingTxn) Commit(ctx context.Context) error {
	t.ops.Add(1)
	return t.inner.Commit(ctx)
}

func (t *countingTxn) Abort(ctx context.Context) error {
	t.ops.Add(1)
	return t.inner.Abort(ctx)
}

// ExecBatch implements BatchTxn: a batch is one exchange on a remote
// transaction, so it counts one op regardless of statement count —
// the round-trip economics the batching exists to buy.
func (t *countingTxn) ExecBatch(ctx context.Context, stmts []Stmt) ([]StmtResult, error) {
	if len(stmts) == 0 {
		return nil, nil
	}
	t.ops.Add(1)
	if bt, ok := t.inner.(BatchTxn); ok {
		return bt.ExecBatch(ctx, stmts)
	}
	return execSerial(ctx, t.inner, stmts)
}

package storeapi

import (
	"context"
	"reflect"
	"testing"

	"edgeejb/internal/memento"
	"edgeejb/internal/sqlstore"
)

// methodSet maps exported method name -> signature with the receiver
// stripped, so concrete wrapper types compare equal to each other and
// to interface declarations.
func methodSet(t *testing.T, typ reflect.Type) map[string]string {
	t.Helper()
	out := make(map[string]string, typ.NumMethod())
	for i := 0; i < typ.NumMethod(); i++ {
		m := typ.Method(i)
		sig := m.Type
		if typ.Kind() != reflect.Interface {
			// Concrete method signatures carry the receiver as In(0).
			in := make([]reflect.Type, 0, sig.NumIn()-1)
			for j := 1; j < sig.NumIn(); j++ {
				in = append(in, sig.In(j))
			}
			outTypes := make([]reflect.Type, 0, sig.NumOut())
			for j := 0; j < sig.NumOut(); j++ {
				outTypes = append(outTypes, sig.Out(j))
			}
			sig = reflect.FuncOf(in, outTypes, sig.IsVariadic())
		}
		out[m.Name] = sig.String()
	}
	return out
}

// requireSuperset fails unless every method of want exists on got with
// an identical signature.
func requireSuperset(t *testing.T, label string, got, want map[string]string) {
	t.Helper()
	for name, sig := range want {
		gotSig, ok := got[name]
		if !ok {
			t.Errorf("%s: missing method %s%s", label, name, sig)
			continue
		}
		if gotSig != sig {
			t.Errorf("%s: method %s signature = %s, want %s", label, name, gotSig, sig)
		}
	}
}

// TestCountingParityWithLocal pins the counting decorator to the local
// implementation by reflection: every method Local's Conn and Txn
// expose must exist on CountingConn and its Txn with an identical
// signature. A footprint-style signature change that reaches Local but
// not Counting (or vice versa) fails here rather than at a distant
// call site.
func TestCountingParityWithLocal(t *testing.T) {
	store := sqlstore.New()
	defer store.Close()
	seedOne(store, "t", "1", 1)
	ctx := context.Background()

	local := Local(store)
	counting := NewCountingConn(Local(store))
	defer counting.Close()
	defer local.Close()

	localConn := methodSet(t, reflect.TypeOf(local))
	countingConn := methodSet(t, reflect.TypeOf(counting))
	ifaceConn := methodSet(t, reflect.TypeOf((*Conn)(nil)).Elem())
	requireSuperset(t, "CountingConn vs Local", countingConn, localConn)
	requireSuperset(t, "Local vs Conn interface", localConn, ifaceConn)
	requireSuperset(t, "CountingConn vs Conn interface", countingConn, ifaceConn)

	ltxn, err := local.Begin(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer ltxn.Abort(ctx)
	ctxn, err := counting.Begin(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer ctxn.Abort(ctx)

	localTxn := methodSet(t, reflect.TypeOf(ltxn))
	countingTxn := methodSet(t, reflect.TypeOf(ctxn))
	ifaceTxn := methodSet(t, reflect.TypeOf((*Txn)(nil)).Elem())
	requireSuperset(t, "countingTxn vs localTxn", countingTxn, localTxn)
	requireSuperset(t, "localTxn vs Txn interface", localTxn, ifaceTxn)
	requireSuperset(t, "countingTxn vs Txn interface", countingTxn, ifaceTxn)
}

// TestCountingCountsFootprintCarryingCalls: the footprint-carrying
// reads (Get, GetForUpdate, Query, AutoGet, AutoQuery) each cost
// exactly one counted statement and pass the footprint through intact.
func TestCountingCountsFootprintCarryingCalls(t *testing.T) {
	store := sqlstore.New()
	defer store.Close()
	seedOne(store, "t", "1", 1)
	ctx := context.Background()
	conn := NewCountingConn(Local(store))
	defer conn.Close()

	before := conn.Ops()
	res, err := conn.AutoGet(ctx, "t", "1")
	if err != nil {
		t.Fatal(err)
	}
	if res.FP.Empty() {
		t.Error("AutoGet through counting lost its footprint")
	}
	if got := conn.Ops() - before; got != 1 {
		t.Errorf("AutoGet cost %d ops, want 1", got)
	}

	before = conn.Ops()
	qres, err := conn.AutoQuery(ctx, memento.Query{Table: "t"})
	if err != nil {
		t.Fatal(err)
	}
	if len(qres.FP.Queries) != 1 {
		t.Error("AutoQuery through counting lost its footprint")
	}
	if got := conn.Ops() - before; got != 1 {
		t.Errorf("AutoQuery cost %d ops, want 1", got)
	}

	txn, err := conn.Begin(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer txn.Abort(ctx)
	before = conn.Ops()
	gres, err := txn.Get(ctx, "t", "1")
	if err != nil {
		t.Fatal(err)
	}
	if gres.FP.Empty() {
		t.Error("Get through counting lost its footprint")
	}
	tq, err := txn.Query(ctx, memento.Query{Table: "t"})
	if err != nil {
		t.Fatal(err)
	}
	if len(tq.FP.Queries) != 1 {
		t.Error("Query through counting lost its footprint")
	}
	if got := conn.Ops() - before; got != 2 {
		t.Errorf("Get+Query cost %d ops, want 2", got)
	}
}

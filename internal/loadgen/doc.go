// Package loadgen drives the Trade workload against an application
// server the way the paper's load-generation program does: a single
// virtual client (a "low-load situation so as to factor out queuing
// delay effects", §4.3) running complete sessions, with a warmup period
// before measurement and batched latency reporting (the paper's 20
// batches, for the confidence intervals of §4.3).
//
// The load generator is also the system's trace source: every measured
// interaction runs under a fresh trace ID and a "client.interaction"
// span, so its journey through the tiers reconstructs as one span tree
// (see OBSERVABILITY.md).
package loadgen

package loadgen

import (
	"context"
	"fmt"
	"time"

	"edgeejb/internal/appserver"
	"edgeejb/internal/stats"
	"edgeejb/internal/trade"
)

// ResilientConfig describes a run under fault injection. Unlike Run,
// transport errors do not abort the whole run: a failed step fails its
// session, and a failed session is retried from the top (sessions are
// generated fresh each attempt, so replays are new work, not duplicate
// commits).
type ResilientConfig struct {
	Client    *appserver.Client
	Generator *trade.Generator
	// Sessions is the number of sessions that must be attempted.
	Sessions int
	// SessionRetries is how many extra attempts a failed session gets
	// (default 3).
	SessionRetries int
	// StepTimeout bounds each individual interaction (default 10s), so
	// a blackholed path stalls one step, not the whole run.
	StepTimeout time.Duration
}

// ResilientResult is the outcome of a faulted run.
type ResilientResult struct {
	// Succeeded counts sessions that completed every step.
	Succeeded int
	// Failed counts sessions abandoned after exhausting retries.
	Failed int
	// SessionRetries counts session-level retry attempts consumed.
	SessionRetries int
	// StepErrors counts individual step failures (transport errors or
	// step timeouts), including ones later recovered by a retry.
	StepErrors int
	// Interactions is the number of completed client interactions.
	Interactions int
	// Latency summarizes completed-interaction latency in milliseconds
	// (failed steps are excluded; their cost shows up as retries).
	Latency stats.Summary
	// Elapsed is the run's wall-clock duration.
	Elapsed time.Duration
}

// SuccessRate returns the fraction of sessions that completed.
func (r ResilientResult) SuccessRate() float64 {
	total := r.Succeeded + r.Failed
	if total == 0 {
		return 0
	}
	return float64(r.Succeeded) / float64(total)
}

// RunResilient drives sessions under fault injection, retrying failed
// sessions instead of aborting the run. Only context cancellation stops
// it early.
func RunResilient(ctx context.Context, cfg ResilientConfig) (ResilientResult, error) {
	if cfg.Client == nil || cfg.Generator == nil {
		return ResilientResult{}, fmt.Errorf("loadgen: client and generator are required")
	}
	if cfg.Sessions < 1 {
		cfg.Sessions = 1
	}
	if cfg.SessionRetries < 0 {
		cfg.SessionRetries = 0
	} else if cfg.SessionRetries == 0 {
		cfg.SessionRetries = 3
	}
	if cfg.StepTimeout <= 0 {
		cfg.StepTimeout = 10 * time.Second
	}

	var res ResilientResult
	var latencies []float64
	start := time.Now()
	for i := 0; i < cfg.Sessions; i++ {
		if ctx.Err() != nil {
			return res, ctx.Err()
		}
		var ok bool
		for attempt := 0; attempt <= cfg.SessionRetries; attempt++ {
			if attempt > 0 {
				res.SessionRetries++
			}
			lats, err := runSessionResilient(ctx, cfg, &res)
			latencies = append(latencies, lats...)
			if err == nil {
				ok = true
				break
			}
			if ctx.Err() != nil {
				return res, ctx.Err()
			}
		}
		if ok {
			res.Succeeded++
		} else {
			res.Failed++
		}
	}
	res.Elapsed = time.Since(start)
	res.Interactions = len(latencies)
	res.Latency = stats.Summarize(latencies)
	return res, nil
}

// runSessionResilient runs one session attempt with per-step timeouts,
// returning the latencies of the steps that completed.
func runSessionResilient(ctx context.Context, cfg ResilientConfig, res *ResilientResult) ([]float64, error) {
	steps := cfg.Generator.Session()
	latencies := make([]float64, 0, len(steps))
	for _, step := range steps {
		lat, err := doStepTimeout(ctx, cfg.Client, step, cfg.StepTimeout)
		if err != nil {
			res.StepErrors++
			return latencies, fmt.Errorf("step %s: %w", step.Action, err)
		}
		latencies = append(latencies, lat)
	}
	return latencies, nil
}

func doStepTimeout(ctx context.Context, client *appserver.Client, step trade.Step, d time.Duration) (float64, error) {
	sctx, cancel := context.WithTimeout(ctx, d)
	defer cancel()
	begin := time.Now()
	resp, err := client.DoStep(sctx, step)
	if err != nil {
		return 0, err
	}
	if !resp.OK {
		// Application-level failure (e.g. retries exhausted on a
		// conflicting commit under the fault schedule): the step
		// round-tripped but the session's work did not land.
		return 0, fmt.Errorf("application error: %s", resp.Err)
	}
	return float64(time.Since(begin)) / float64(time.Millisecond), nil
}

package loadgen

import (
	"context"
	"fmt"
	"time"

	"edgeejb/internal/appserver"
	"edgeejb/internal/obs"
	"edgeejb/internal/stats"
	"edgeejb/internal/trade"
)

// obsInteractions mirrors the measured interaction count into the
// process-wide obs registry; documented in OBSERVABILITY.md.
var obsInteractions = obs.Default.Counter("loadgen.interactions")

// Config describes one measurement run.
type Config struct {
	// Client is the virtual web client.
	Client *appserver.Client
	// Generator produces the session steps.
	Generator *trade.Generator
	// WarmupSessions run before measurement begins (paper: 400).
	WarmupSessions int
	// Sessions are measured (paper: 300).
	Sessions int
	// Batches for batched means (paper: 20).
	Batches int
}

// Result is one run's measurements.
type Result struct {
	// Interactions is the number of measured client interactions.
	Interactions int
	// Latency summarizes per-interaction round-trip latency in
	// milliseconds.
	Latency stats.Summary
	// BatchMeans are the per-batch mean latencies (ms).
	BatchMeans []float64
	// CI95 is the 95% confidence half-width on the mean latency,
	// computed from the batch means (the paper's batching exists for
	// exactly this).
	CI95 float64
	// PerAction summarizes latency by trade action.
	PerAction map[string]stats.Summary
	// Failures counts interactions whose response reported an error.
	Failures int
	// Elapsed is the measured phase's wall-clock duration.
	Elapsed time.Duration
}

// MeanLatencyMs is the headline number: mean latency of a client
// interaction, in milliseconds.
func (r Result) MeanLatencyMs() float64 { return r.Latency.Mean }

// Run performs warmup then measurement. Application-level failures
// (e.g. a conflicting commit that exhausted retries) are counted, not
// fatal; transport failures abort the run.
func Run(ctx context.Context, cfg Config) (Result, error) {
	if cfg.Client == nil || cfg.Generator == nil {
		return Result{}, fmt.Errorf("loadgen: client and generator are required")
	}
	if cfg.Sessions < 1 {
		cfg.Sessions = 1
	}
	if cfg.Batches < 1 {
		cfg.Batches = 20
	}

	for i := 0; i < cfg.WarmupSessions; i++ {
		if _, _, err := runSession(ctx, cfg.Client, cfg.Generator, nil); err != nil {
			return Result{}, fmt.Errorf("loadgen: warmup session %d: %w", i, err)
		}
	}

	var (
		latencies []float64
		perAction = make(map[string][]float64)
		failures  int
	)
	start := time.Now()
	for i := 0; i < cfg.Sessions; i++ {
		lats, fails, err := runSession(ctx, cfg.Client, cfg.Generator, perAction)
		if err != nil {
			return Result{}, fmt.Errorf("loadgen: session %d: %w", i, err)
		}
		latencies = append(latencies, lats...)
		failures += fails
	}
	elapsed := time.Since(start)

	batchMeans := stats.BatchMeans(latencies, cfg.Batches)
	res := Result{
		Interactions: len(latencies),
		Latency:      stats.Summarize(latencies),
		BatchMeans:   batchMeans,
		CI95:         stats.ConfidenceInterval95(batchMeans),
		PerAction:    make(map[string]stats.Summary, len(perAction)),
		Failures:     failures,
		Elapsed:      elapsed,
	}
	for action, lats := range perAction {
		res.PerAction[action] = stats.Summarize(lats)
	}
	return res, nil
}

// runSession executes one session and returns per-interaction latencies
// in milliseconds. perAction, when non-nil, collects latencies by
// action name.
func runSession(ctx context.Context, client *appserver.Client, gen *trade.Generator, perAction map[string][]float64) ([]float64, int, error) {
	steps := gen.Session()
	latencies := make([]float64, 0, len(steps))
	failures := 0
	for _, step := range steps {
		// Each interaction gets its own trace so its spans — the edge
		// dispatch and any cache-miss or commit round trips it caused —
		// reconstruct as one tree in the span log.
		tctx, _ := obs.WithNewTrace(ctx)
		sctx, span := obs.StartSpan(tctx, "client.interaction")
		begin := time.Now()
		resp, err := client.DoStep(sctx, step)
		span.End()
		if err != nil {
			return nil, 0, fmt.Errorf("step %s: %w", step.Action, err)
		}
		obsInteractions.Inc()
		ms := float64(time.Since(begin)) / float64(time.Millisecond)
		latencies = append(latencies, ms)
		if perAction != nil {
			perAction[step.Action.String()] = append(perAction[step.Action.String()], ms)
		}
		if !resp.OK {
			failures++
		}
	}
	return latencies, failures, nil
}

package loadgen

import (
	"context"
	"fmt"
	"sync"
	"time"

	"edgeejb/internal/appserver"
	"edgeejb/internal/stats"
	"edgeejb/internal/trade"
)

// ConcurrentConfig describes a multi-client run. The paper deliberately
// measured a "low-load situation so as to factor out queuing delay
// effects" with one virtual client; this runner is the extension that
// puts the queuing effects back, driving several virtual clients
// concurrently against the same deployment to measure throughput and
// contention (optimistic-conflict rates rise with concurrency).
type ConcurrentConfig struct {
	// NewClient builds one virtual client's connection; each client gets
	// its own (browsers do not share sockets).
	NewClient func() *appserver.Client
	// Clients is the number of concurrent virtual clients.
	Clients int
	// SessionsPerClient measured per client.
	SessionsPerClient int
	// WarmupSessions run on one client before measurement.
	WarmupSessions int
	// Workload sizes the generators; each client derives a distinct seed
	// so clients walk different users (with overlap, which is what
	// produces conflicts).
	Workload trade.GeneratorConfig
}

// ConcurrentResult aggregates a multi-client run.
type ConcurrentResult struct {
	// Clients echoes the concurrency level.
	Clients int
	// Interactions across all clients.
	Interactions int
	// Throughput in interactions per second (wall clock).
	Throughput float64
	// Latency summarizes per-interaction latency (ms) across clients.
	Latency stats.Summary
	// Failures counts interactions whose response reported an error
	// (e.g. optimistic transactions that exhausted their retries).
	Failures int
	// Elapsed is the measured wall-clock duration.
	Elapsed time.Duration
}

// RunConcurrent drives Clients virtual clients in parallel and
// aggregates their measurements.
func RunConcurrent(ctx context.Context, cfg ConcurrentConfig) (ConcurrentResult, error) {
	if cfg.NewClient == nil {
		return ConcurrentResult{}, fmt.Errorf("loadgen: NewClient is required")
	}
	if cfg.Clients < 1 {
		cfg.Clients = 1
	}
	if cfg.SessionsPerClient < 1 {
		cfg.SessionsPerClient = 1
	}

	// Warmup on a single client.
	if cfg.WarmupSessions > 0 {
		warm := cfg.NewClient()
		gen := trade.NewGenerator(cfg.Workload)
		for i := 0; i < cfg.WarmupSessions; i++ {
			if _, _, err := runSession(ctx, warm, gen, nil); err != nil {
				_ = warm.Close()
				return ConcurrentResult{}, fmt.Errorf("loadgen: warmup: %w", err)
			}
		}
		_ = warm.Close()
	}

	type clientOut struct {
		latencies []float64
		failures  int
		err       error
	}
	outs := make([]clientOut, cfg.Clients)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < cfg.Clients; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			client := cfg.NewClient()
			defer client.Close()
			wl := cfg.Workload
			wl.Seed = wl.Seed*1000 + int64(c) + 1
			gen := trade.NewGenerator(wl)
			for s := 0; s < cfg.SessionsPerClient; s++ {
				lats, fails, err := runSession(ctx, client, gen, nil)
				if err != nil {
					outs[c].err = fmt.Errorf("client %d session %d: %w", c, s, err)
					return
				}
				outs[c].latencies = append(outs[c].latencies, lats...)
				outs[c].failures += fails
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	var all []float64
	failures := 0
	for _, o := range outs {
		if o.err != nil {
			return ConcurrentResult{}, o.err
		}
		all = append(all, o.latencies...)
		failures += o.failures
	}
	res := ConcurrentResult{
		Clients:      cfg.Clients,
		Interactions: len(all),
		Latency:      stats.Summarize(all),
		Failures:     failures,
		Elapsed:      elapsed,
	}
	if elapsed > 0 {
		res.Throughput = float64(len(all)) / elapsed.Seconds()
	}
	return res, nil
}

package loadgen

import (
	"context"
	"testing"

	"edgeejb/internal/appserver"
	"edgeejb/internal/component"
	"edgeejb/internal/sqlstore"
	"edgeejb/internal/storeapi"
	"edgeejb/internal/trade"
)

func newConcurrentTarget(t *testing.T) func() *appserver.Client {
	t.Helper()
	store := sqlstore.New()
	t.Cleanup(store.Close)
	trade.Populate(store, trade.PopulateConfig{Users: 10, Symbols: 20, HoldingsPerUser: 2})
	reg, err := trade.NewEntityRegistry()
	if err != nil {
		t.Fatal(err)
	}
	svc := trade.NewService(component.NewContainer(reg, component.NewJDBCManager(storeapi.Local(store))))
	srv := appserver.NewServer(svc)
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	addr := srv.Addr()
	return func() *appserver.Client { return appserver.NewClient(addr) }
}

func TestRunConcurrentAggregates(t *testing.T) {
	newClient := newConcurrentTarget(t)
	res, err := RunConcurrent(context.Background(), ConcurrentConfig{
		NewClient:         newClient,
		Clients:           3,
		SessionsPerClient: 4,
		WarmupSessions:    1,
		Workload:          trade.GeneratorConfig{Seed: 9, Users: 10, Symbols: 20},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Clients != 3 {
		t.Errorf("clients = %d", res.Clients)
	}
	if res.Interactions < 3*4*3 {
		t.Errorf("interactions = %d, too few", res.Interactions)
	}
	if res.Throughput <= 0 {
		t.Errorf("throughput = %v", res.Throughput)
	}
	if res.Latency.Mean <= 0 {
		t.Errorf("latency = %+v", res.Latency)
	}
}

func TestRunConcurrentValidates(t *testing.T) {
	if _, err := RunConcurrent(context.Background(), ConcurrentConfig{}); err == nil {
		t.Fatal("missing NewClient accepted")
	}
}

func TestRunConcurrentDistinctSeeds(t *testing.T) {
	// Clients must not replay identical sessions: with many clients and
	// a tiny workload, identical seeds would make all clients hammer the
	// same user in the same order. We check generators differ via the
	// derived seeds (behavioral check: first sessions differ for at
	// least one pair).
	wl := trade.GeneratorConfig{Seed: 5, Users: 10, Symbols: 20}
	g1 := trade.NewGenerator(func() trade.GeneratorConfig { c := wl; c.Seed = c.Seed*1000 + 1; return c }())
	g2 := trade.NewGenerator(func() trade.GeneratorConfig { c := wl; c.Seed = c.Seed*1000 + 2; return c }())
	s1, s2 := g1.Session(), g2.Session()
	same := len(s1) == len(s2)
	if same {
		for i := range s1 {
			if s1[i] != s2[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("derived seeds produced identical sessions")
	}
}

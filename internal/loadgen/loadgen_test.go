package loadgen

import (
	"context"
	"testing"

	"edgeejb/internal/appserver"
	"edgeejb/internal/component"
	"edgeejb/internal/sqlstore"
	"edgeejb/internal/storeapi"
	"edgeejb/internal/trade"
)

func newTarget(t *testing.T) *appserver.Client {
	t.Helper()
	store := sqlstore.New()
	t.Cleanup(store.Close)
	trade.Populate(store, trade.PopulateConfig{Users: 8, Symbols: 16, HoldingsPerUser: 2})
	reg, err := trade.NewEntityRegistry()
	if err != nil {
		t.Fatal(err)
	}
	svc := trade.NewService(component.NewContainer(reg, component.NewJDBCManager(storeapi.Local(store))))
	srv := appserver.NewServer(svc)
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	client := appserver.NewClient(srv.Addr())
	t.Cleanup(func() {
		_ = client.Close()
		srv.Close()
	})
	return client
}

func TestRunMeasuresSessions(t *testing.T) {
	client := newTarget(t)
	gen := trade.NewGenerator(trade.GeneratorConfig{Seed: 3, Users: 8, Symbols: 16})
	res, err := Run(context.Background(), Config{
		Client:         client,
		Generator:      gen,
		WarmupSessions: 2,
		Sessions:       5,
		Batches:        4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Interactions < 5*3 {
		t.Errorf("interactions = %d, too few", res.Interactions)
	}
	if res.Latency.Mean <= 0 {
		t.Errorf("mean latency = %v", res.Latency.Mean)
	}
	if len(res.BatchMeans) != 4 {
		t.Errorf("batch means = %d, want 4", len(res.BatchMeans))
	}
	if res.Failures != 0 {
		t.Errorf("failures = %d", res.Failures)
	}
	if len(res.PerAction) == 0 {
		t.Error("no per-action breakdown")
	}
	if _, ok := res.PerAction["login"]; !ok {
		t.Error("login missing from per-action stats")
	}
	if res.Elapsed <= 0 {
		t.Error("elapsed not measured")
	}
}

func TestRunValidatesConfig(t *testing.T) {
	if _, err := Run(context.Background(), Config{}); err == nil {
		t.Fatal("missing client/generator accepted")
	}
}

func TestRunReportsConfidenceInterval(t *testing.T) {
	client := newTarget(t)
	gen := trade.NewGenerator(trade.GeneratorConfig{Seed: 4, Users: 8, Symbols: 16})
	res, err := Run(context.Background(), Config{
		Client:    client,
		Generator: gen,
		Sessions:  6,
		Batches:   5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.CI95 <= 0 {
		t.Errorf("CI95 = %v, want positive for noisy latencies", res.CI95)
	}
	// The CI must be plausible: no wider than the full latency range.
	if res.CI95 > res.Latency.Max-res.Latency.Min {
		t.Errorf("CI95 %v wider than the observed range", res.CI95)
	}
}

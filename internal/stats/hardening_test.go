package stats

import (
	"errors"
	"math"
	"testing"
)

// TestTCriticalClampsLowDF: out-of-domain degrees of freedom must yield
// the widest tabulated critical value, never NaN. Pre-fix, df < 1
// returned NaN, which poisoned every confidence interval it reached.
func TestTCriticalClampsLowDF(t *testing.T) {
	for _, df := range []int{0, -1, -100} {
		got := tCritical95(df)
		if math.IsNaN(got) {
			t.Fatalf("tCritical95(%d) = NaN", df)
		}
		if got != 12.706 {
			t.Fatalf("tCritical95(%d) = %v, want 12.706 (df=1 clamp)", df, got)
		}
	}
}

// TestLinearFitDegenerateError: a spread-free x series must fail with
// the sentinel error so callers can distinguish "no sensitivity to fit"
// from real failures.
func TestLinearFitDegenerateError(t *testing.T) {
	_, err := LinearFit([]float64{5, 5, 5}, []float64{1, 2, 3})
	if !errors.Is(err, ErrDegenerate) {
		t.Fatalf("err = %v, want ErrDegenerate", err)
	}
}

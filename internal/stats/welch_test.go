package stats

import (
	"math"
	"testing"
)

func TestWelchTestSeparatedMeans(t *testing.T) {
	// Two tight samples 10 apart: unambiguously significant, with the
	// right sign convention (MeanDiff = mean(b) - mean(a)).
	a := []float64{10, 10.1, 9.9, 10.05, 9.95}
	b := []float64{20, 20.2, 19.8, 20.1, 19.9}
	r, err := WelchTest(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Significant {
		t.Fatalf("10-sigma separation not significant: %+v", r)
	}
	if r.MeanDiff < 9.5 || r.MeanDiff > 10.5 {
		t.Fatalf("MeanDiff = %v, want ~10", r.MeanDiff)
	}
	if r.T <= 0 {
		t.Fatalf("T = %v, want positive for b > a", r.T)
	}
	// Swapped order flips the sign.
	rs, err := WelchTest(b, a)
	if err != nil {
		t.Fatal(err)
	}
	if rs.MeanDiff >= 0 || rs.T >= 0 {
		t.Fatalf("swapped test not negative: %+v", rs)
	}
}

func TestWelchTestOverlappingMeans(t *testing.T) {
	// Noisy samples with nearly identical means: must NOT be flagged.
	a := []float64{10, 14, 8, 12, 9, 13}
	b := []float64{11, 13, 9, 12, 10, 12}
	r, err := WelchTest(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if r.Significant {
		t.Fatalf("overlapping samples flagged significant: %+v", r)
	}
	if r.CI95 <= math.Abs(r.MeanDiff) {
		t.Fatalf("CI95 %v should cover the mean diff %v", r.CI95, r.MeanDiff)
	}
}

func TestWelchTestUnequalVariances(t *testing.T) {
	// One tight and one loose sample: the Welch df must fall below the
	// pooled n1+n2-2, reflecting the looser sample's dominance.
	a := []float64{10.0, 10.01, 9.99, 10.0, 10.01, 9.99}
	b := []float64{12, 18, 9, 15, 8, 16}
	r, err := WelchTest(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if r.DF >= len(a)+len(b)-2 {
		t.Fatalf("Welch DF = %d, want < pooled %d", r.DF, len(a)+len(b)-2)
	}
	if r.DF < 1 {
		t.Fatalf("DF = %d, want >= 1", r.DF)
	}
}

func TestWelchTestZeroVariance(t *testing.T) {
	// Identical constants on both sides: no difference, not significant.
	same, err := WelchTest([]float64{5, 5, 5}, []float64{5, 5, 5})
	if err != nil {
		t.Fatal(err)
	}
	if same.Significant || same.MeanDiff != 0 {
		t.Fatalf("identical constants: %+v", same)
	}
	// Different constants: zero noise, any difference is significant.
	diff, err := WelchTest([]float64{5, 5, 5}, []float64{6, 6, 6})
	if err != nil {
		t.Fatal(err)
	}
	if !diff.Significant || diff.MeanDiff != 1 {
		t.Fatalf("distinct constants: %+v", diff)
	}
	if !math.IsInf(diff.T, 1) {
		t.Fatalf("T = %v, want +Inf", diff.T)
	}
}

func TestWelchTestInsufficientData(t *testing.T) {
	for _, pair := range [][2][]float64{
		{nil, {1, 2}},
		{{1, 2}, nil},
		{{1}, {1, 2}},
		{{1, 2}, {1}},
	} {
		if _, err := WelchTest(pair[0], pair[1]); err != ErrInsufficientData {
			t.Fatalf("WelchTest(%v, %v) err = %v, want ErrInsufficientData", pair[0], pair[1], err)
		}
	}
}

package stats

import (
	"errors"
	"math"
	"sort"
)

// Fit is an ordinary least-squares line y = Slope*x + Intercept.
type Fit struct {
	Slope     float64
	Intercept float64
	// R2 is the coefficient of determination of the fit (1 = perfect).
	R2 float64
}

// ErrInsufficientData is returned when a computation needs more points.
var ErrInsufficientData = errors.New("stats: insufficient data")

// ErrDegenerate is returned when a fit is undefined for the given data
// (e.g. an x series with no spread).
var ErrDegenerate = errors.New("stats: degenerate x series")

// LinearFit fits a least-squares line through (xs[i], ys[i]). The slope
// is the paper's "latency sensitivity": the increase in client latency
// per unit increase in injected one-way delay.
func LinearFit(xs, ys []float64) (Fit, error) {
	if len(xs) != len(ys) {
		return Fit{}, errors.New("stats: mismatched series lengths")
	}
	if len(xs) < 2 {
		return Fit{}, ErrInsufficientData
	}
	n := float64(len(xs))
	var sumX, sumY float64
	for i := range xs {
		sumX += xs[i]
		sumY += ys[i]
	}
	meanX, meanY := sumX/n, sumY/n
	var sxx, sxy, syy float64
	for i := range xs {
		dx, dy := xs[i]-meanX, ys[i]-meanY
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return Fit{}, ErrDegenerate
	}
	slope := sxy / sxx
	intercept := meanY - slope*meanX
	r2 := 1.0
	if syy > 0 {
		var ssRes float64
		for i := range xs {
			resid := ys[i] - (slope*xs[i] + intercept)
			ssRes += resid * resid
		}
		r2 = 1 - ssRes/syy
	}
	return Fit{Slope: slope, Intercept: intercept, R2: r2}, nil
}

// Summary describes one sample.
type Summary struct {
	N      int
	Mean   float64
	Stddev float64
	Min    float64
	Max    float64
	P50    float64
	P95    float64
}

// Summarize computes a Summary. An empty sample yields a zero Summary.
func Summarize(values []float64) Summary {
	if len(values) == 0 {
		return Summary{}
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	var sum float64
	for _, v := range sorted {
		sum += v
	}
	mean := sum / float64(len(sorted))
	var ss float64
	for _, v := range sorted {
		d := v - mean
		ss += d * d
	}
	stddev := 0.0
	if len(sorted) > 1 {
		stddev = math.Sqrt(ss / float64(len(sorted)-1))
	}
	return Summary{
		N:      len(sorted),
		Mean:   mean,
		Stddev: stddev,
		Min:    sorted[0],
		Max:    sorted[len(sorted)-1],
		P50:    percentile(sorted, 0.50),
		P95:    percentile(sorted, 0.95),
	}
}

// percentile interpolates the p-th percentile of a sorted sample.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := p * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// BatchMeans splits values into batches contiguous groups and returns
// each group's mean — the paper reports "the batched (over 20 batches)
// average" of its runs. Fewer values than batches yields one batch per
// value.
func BatchMeans(values []float64, batches int) []float64 {
	if len(values) == 0 || batches < 1 {
		return nil
	}
	if batches > len(values) {
		batches = len(values)
	}
	out := make([]float64, 0, batches)
	size := len(values) / batches
	rem := len(values) % batches
	idx := 0
	for b := 0; b < batches; b++ {
		n := size
		if b < rem {
			n++
		}
		var sum float64
		for i := 0; i < n; i++ {
			sum += values[idx]
			idx++
		}
		out = append(out, sum/float64(n))
	}
	return out
}

// Mean returns the arithmetic mean (0 for an empty sample).
func Mean(values []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	var sum float64
	for _, v := range values {
		sum += v
	}
	return sum / float64(len(values))
}

// ConfidenceInterval95 returns the half-width of the 95% confidence
// interval for the mean of the given batch means, using the Student-t
// distribution — the standard batch-means method, and the reason the
// paper reports "the batched (over 20 batches) average". It returns 0
// for fewer than two batches.
func ConfidenceInterval95(batchMeans []float64) float64 {
	n := len(batchMeans)
	if n < 2 {
		return 0
	}
	s := Summarize(batchMeans)
	t := tCritical95(n - 1)
	return t * s.Stddev / math.Sqrt(float64(n))
}

// tCritical95 returns the two-sided 95% Student-t critical value for
// the given degrees of freedom (exact table through 30, the normal
// approximation beyond).
func tCritical95(df int) float64 {
	table := []float64{
		// df = 1..30
		12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
		2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
		2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
	}
	if df < 1 {
		// Out-of-domain callers get the most conservative (widest)
		// interval rather than a NaN that poisons every downstream
		// aggregate it is multiplied into.
		return table[0]
	}
	if df <= len(table) {
		return table[df-1]
	}
	return 1.960
}

package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almost(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestLinearFitExactLine(t *testing.T) {
	xs := []float64{0, 1, 2, 4, 8}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3.5*x + 2
	}
	fit, err := LinearFit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(fit.Slope, 3.5, 1e-9) || !almost(fit.Intercept, 2, 1e-9) {
		t.Errorf("fit = %+v", fit)
	}
	if !almost(fit.R2, 1, 1e-9) {
		t.Errorf("R2 = %v, want 1", fit.R2)
	}
}

func TestLinearFitNoisyLine(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var xs, ys []float64
	for i := 0; i < 200; i++ {
		x := float64(i) / 10
		xs = append(xs, x)
		ys = append(ys, 2*x+1+rng.NormFloat64()*0.1)
	}
	fit, err := LinearFit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(fit.Slope, 2, 0.05) {
		t.Errorf("slope = %v, want ~2", fit.Slope)
	}
	if fit.R2 < 0.99 {
		t.Errorf("R2 = %v, want > 0.99", fit.R2)
	}
}

func TestLinearFitErrors(t *testing.T) {
	if _, err := LinearFit([]float64{1}, []float64{1}); err == nil {
		t.Error("single point accepted")
	}
	if _, err := LinearFit([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("mismatched lengths accepted")
	}
	if _, err := LinearFit([]float64{2, 2}, []float64{1, 3}); err == nil {
		t.Error("degenerate x accepted")
	}
}

func TestLinearFitConstantY(t *testing.T) {
	fit, err := LinearFit([]float64{0, 1, 2}, []float64{5, 5, 5})
	if err != nil {
		t.Fatal(err)
	}
	if fit.Slope != 0 || fit.Intercept != 5 || fit.R2 != 1 {
		t.Errorf("fit = %+v", fit)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{4, 1, 3, 2})
	if s.N != 4 || s.Min != 1 || s.Max != 4 {
		t.Errorf("summary = %+v", s)
	}
	if !almost(s.Mean, 2.5, 1e-9) {
		t.Errorf("mean = %v", s.Mean)
	}
	if !almost(s.P50, 2.5, 1e-9) {
		t.Errorf("p50 = %v", s.P50)
	}
	// Summarize must not mutate the caller's slice.
	in := []float64{3, 1, 2}
	_ = Summarize(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Error("Summarize reordered the input")
	}
	if got := Summarize(nil); got.N != 0 {
		t.Errorf("empty summary = %+v", got)
	}
	one := Summarize([]float64{7})
	if one.P95 != 7 || one.Stddev != 0 {
		t.Errorf("single-sample summary = %+v", one)
	}
}

func TestBatchMeans(t *testing.T) {
	got := BatchMeans([]float64{1, 2, 3, 4, 5, 6}, 3)
	want := []float64{1.5, 3.5, 5.5}
	if len(got) != 3 {
		t.Fatalf("batches = %v", got)
	}
	for i := range want {
		if !almost(got[i], want[i], 1e-9) {
			t.Errorf("batch %d = %v, want %v", i, got[i], want[i])
		}
	}
	if got := BatchMeans([]float64{1, 2}, 5); len(got) != 2 {
		t.Errorf("more batches than values: %v", got)
	}
	if got := BatchMeans(nil, 3); got != nil {
		t.Errorf("empty input: %v", got)
	}
}

// Property: the mean of batch means (with equal-ish batches) equals the
// overall mean within floating error, for any sample.
func TestBatchMeansPreserveMeanProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(100)
		values := make([]float64, n)
		for i := range values {
			values[i] = rng.Float64() * 100
		}
		batches := 1 + rng.Intn(10)
		bm := BatchMeans(values, batches)
		// Weight batch means by batch size to recover the exact mean.
		size := n / min(batches, n)
		_ = size
		// Instead verify directly via weighted reconstruction.
		k := min(batches, n)
		base, rem := n/k, n%k
		var sum float64
		for i, m := range bm {
			w := base
			if i < rem {
				w++
			}
			sum += m * float64(w)
		}
		return almost(sum/float64(n), Mean(values), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if !almost(Mean([]float64{1, 2, 3}), 2, 1e-9) {
		t.Error("Mean wrong")
	}
}

func TestPercentileInterpolation(t *testing.T) {
	s := Summarize([]float64{0, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100})
	if !almost(s.P50, 50, 1e-9) {
		t.Errorf("p50 = %v", s.P50)
	}
	if !almost(s.P95, 95, 1e-9) {
		t.Errorf("p95 = %v", s.P95)
	}
}

func TestConfidenceInterval95(t *testing.T) {
	// Constant batches: zero-width interval.
	if ci := ConfidenceInterval95([]float64{5, 5, 5, 5}); ci != 0 {
		t.Errorf("constant batches CI = %v, want 0", ci)
	}
	// Too few batches.
	if ci := ConfidenceInterval95([]float64{5}); ci != 0 {
		t.Errorf("single batch CI = %v, want 0", ci)
	}
	// Known case: batches {8,10,12}, mean 10, s = 2, n = 3, t(2) = 4.303
	// -> CI = 4.303 * 2 / sqrt(3) ≈ 4.969.
	ci := ConfidenceInterval95([]float64{8, 10, 12})
	if !almost(ci, 4.303*2/math.Sqrt(3), 1e-6) {
		t.Errorf("CI = %v", ci)
	}
	// Large n uses the normal approximation and shrinks with n.
	big := make([]float64, 100)
	rng := rand.New(rand.NewSource(1))
	for i := range big {
		big[i] = 10 + rng.NormFloat64()
	}
	ciBig := ConfidenceInterval95(big)
	if ciBig <= 0 || ciBig > 1 {
		t.Errorf("100-batch CI = %v, want small positive", ciBig)
	}
}

func TestTCriticalMonotonic(t *testing.T) {
	if got := tCritical95(0); got != 12.706 {
		t.Errorf("df=0 should clamp to the df=1 critical value, got %v", got)
	}
	prev := math.Inf(1)
	for df := 1; df <= 60; df++ {
		v := tCritical95(df)
		if v > prev {
			t.Fatalf("t-critical not non-increasing at df=%d: %v > %v", df, v, prev)
		}
		prev = v
	}
	if tCritical95(1000) != 1.960 {
		t.Error("large df should use the normal approximation")
	}
}

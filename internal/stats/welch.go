package stats

import "math"

// TwoSample is the result of a Welch two-sample comparison of means.
type TwoSample struct {
	// MeanDiff is mean(b) - mean(a): positive when b is larger.
	MeanDiff float64
	// T is the Welch t statistic (±Inf when both samples have zero
	// variance but different means).
	T float64
	// DF is the Welch–Satterthwaite degrees of freedom, floored to the
	// integer the critical-value table is indexed by.
	DF int
	// CI95 is the half-width of the 95% confidence interval on MeanDiff.
	CI95 float64
	// Significant reports |MeanDiff| > CI95 — the interval excludes
	// zero at the 95% level.
	Significant bool
}

// WelchTest compares the means of two independent samples without
// assuming equal variances — the right test for batch means from two
// separate benchmark runs, whose noise levels routinely differ. Both
// samples need at least two points (ErrInsufficientData otherwise);
// the degenerate zero-variance-both-sides case reports any nonzero
// mean difference as significant, since the data admits no noise to
// hide behind.
func WelchTest(a, b []float64) (TwoSample, error) {
	if len(a) < 2 || len(b) < 2 {
		return TwoSample{}, ErrInsufficientData
	}
	sa, sb := Summarize(a), Summarize(b)
	diff := sb.Mean - sa.Mean
	va := sa.Stddev * sa.Stddev / float64(sa.N)
	vb := sb.Stddev * sb.Stddev / float64(sb.N)
	se := math.Sqrt(va + vb)
	if se == 0 {
		return TwoSample{
			MeanDiff:    diff,
			T:           math.Inf(sign(diff)),
			DF:          sa.N + sb.N - 2,
			Significant: diff != 0,
		}, nil
	}
	// Welch–Satterthwaite effective degrees of freedom; flooring is the
	// conservative direction (a wider critical value).
	num := (va + vb) * (va + vb)
	den := va*va/float64(sa.N-1) + vb*vb/float64(sb.N-1)
	df := int(num / den)
	if df < 1 {
		df = 1
	}
	ci := tCritical95(df) * se
	return TwoSample{
		MeanDiff:    diff,
		T:           diff / se,
		DF:          df,
		CI95:        ci,
		Significant: math.Abs(diff) > ci,
	}, nil
}

// sign maps a float to the ±1 convention math.Inf expects (0 -> +1).
func sign(x float64) int {
	if x < 0 {
		return -1
	}
	return 1
}

// Package stats provides the small statistics toolkit the evaluation
// needs: ordinary least-squares linear fits (for the latency-sensitivity
// slopes of Table 2 and the "R² = 99%" fit quality the paper reports),
// summaries, and the batch means behind the 95% confidence intervals of
// §4.3.
package stats

package slicache

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"edgeejb/internal/dbwire"
	"edgeejb/internal/memento"
	"edgeejb/internal/obs"
	"edgeejb/internal/sqlstore"
	"edgeejb/internal/storeapi"
)

// TestFinderCacheWarmHitSkipsRoundTrip: with the finder cache on, a
// repeated finder is served locally — zero datastore statements — and
// still returns the committed result set.
func TestFinderCacheWarmHitSkipsRoundTrip(t *testing.T) {
	e := newEnv(t, WithFinderCache(true))
	e.store.Seed(holding("h1", "u1"), holding("h2", "u1"), holding("h3", "u2"))
	ctx := context.Background()

	dt := e.begin(t)
	got, err := dt.Query(ctx, byAcct("u1"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("cold finder = %v", got)
	}
	_ = dt.Abort(ctx)

	before := e.conn.Ops()
	dt2 := e.begin(t)
	defer dt2.Abort(ctx)
	got, err = dt2.Query(ctx, byAcct("u1"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Key.ID != "h1" || got[1].Key.ID != "h2" {
		t.Fatalf("warm finder = %v", got)
	}
	if ops := e.conn.Ops() - before; ops != 0 {
		t.Errorf("warm finder cost %d statements, want 0", ops)
	}
	st := e.mgr.FinderCache().Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Errorf("finder stats = %+v, want 1 hit / 1 miss / 1 entry", st)
	}
}

// TestFinderCacheDisabledByDefault: the library default is off — every
// finder goes to the store, exactly today's behavior.
func TestFinderCacheDisabledByDefault(t *testing.T) {
	e := newEnv(t)
	e.store.Seed(holding("h1", "u1"))
	ctx := context.Background()

	for i := 0; i < 2; i++ {
		dt := e.begin(t)
		if _, err := dt.Query(ctx, byAcct("u1")); err != nil {
			t.Fatal(err)
		}
		_ = dt.Abort(ctx)
	}
	st := e.mgr.FinderCache().Stats()
	if st.Hits != 0 || st.Misses != 0 || st.Entries != 0 {
		t.Errorf("disabled finder cache has activity: %+v", st)
	}
}

// TestFinderCacheNeverOverlaysOwnUncommittedWrites: a transaction must
// never observe a cached finder result in place of its own uncommitted
// writes — updates, creates, and removes all win over the warm cache.
func TestFinderCacheNeverOverlaysOwnUncommittedWrites(t *testing.T) {
	e := newEnv(t, WithFinderCache(true))
	e.store.Seed(holding("h1", "u1"), holding("h2", "u1"))
	ctx := context.Background()

	// Warm the finder cache in a first transaction.
	dt := e.begin(t)
	if _, err := dt.Query(ctx, byAcct("u1")); err != nil {
		t.Fatal(err)
	}
	_ = dt.Abort(ctx)

	dt2 := e.begin(t)
	defer dt2.Abort(ctx)
	m, err := dt2.Load(ctx, memento.Key{Table: "t", ID: "h1"})
	if err != nil {
		t.Fatal(err)
	}
	m.Fields["acct"] = memento.String("u1")
	m.Fields["qty"] = memento.Int(42) // tx-local edit
	if err := dt2.Store(ctx, m); err != nil {
		t.Fatal(err)
	}
	if err := dt2.Create(ctx, holding("hNew", "u1")); err != nil {
		t.Fatal(err)
	}
	if err := dt2.Remove(ctx, memento.Key{Table: "t", ID: "h2"}); err != nil {
		t.Fatal(err)
	}

	before := e.conn.Ops()
	got, err := dt2.Query(ctx, byAcct("u1"))
	if err != nil {
		t.Fatal(err)
	}
	if ops := e.conn.Ops() - before; ops != 0 {
		t.Errorf("warm finder cost %d statements, want 0", ops)
	}
	ids := make(map[string]memento.Memento, len(got))
	for _, r := range got {
		ids[r.Key.ID] = r
	}
	if _, gone := ids["h2"]; gone {
		t.Error("cached finder result resurrected the transaction's own remove")
	}
	if _, created := ids["hNew"]; !created {
		t.Error("cached finder result hid the transaction's own create")
	}
	if h1, ok := ids["h1"]; !ok || h1.Fields["qty"].Int != 42 {
		t.Errorf("cached finder result overlaid the transaction's own update: %v", ids["h1"])
	}
}

// TestFinderCacheInvalidatedByOverlappingNotice: a commit notice whose
// write set overlaps a cached result's footprint evicts it — including
// a create that moves INTO the predicate, which no key-based
// invalidation could catch.
func TestFinderCacheInvalidatedByOverlappingNotice(t *testing.T) {
	e := newEnv(t, WithFinderCache(true))
	e.store.Seed(holding("h1", "u1"))
	ctx := context.Background()

	dt := e.begin(t)
	if _, err := dt.Query(ctx, byAcct("u1")); err != nil {
		t.Fatal(err)
	}
	_ = dt.Abort(ctx)
	if e.mgr.FinderCache().Len() != 1 {
		t.Fatal("finder cache not warm")
	}

	// A non-overlapping commit (other predicate value, key outside the
	// result set) leaves the entry alone.
	e.mgr.noteNotice(sqlstore.Notice{
		TxID: 991,
		Keys: []memento.Key{{Table: "t", ID: "zz"}},
		Writes: []memento.WriteDesc{{
			Key:    memento.Key{Table: "t", ID: "zz"},
			Before: memento.Fields{"acct": memento.String("u9")},
			After:  memento.Fields{"acct": memento.String("u9")},
		}},
	})
	if e.mgr.FinderCache().Len() != 1 {
		t.Fatal("non-overlapping notice evicted the finder entry")
	}

	// A create whose after-image matches the predicate moves into the
	// result set: the entry must go.
	e.mgr.noteNotice(sqlstore.Notice{
		TxID: 992,
		Keys: []memento.Key{{Table: "t", ID: "hNew"}},
		Writes: []memento.WriteDesc{{
			Key:   memento.Key{Table: "t", ID: "hNew"},
			After: memento.Fields{"acct": memento.String("u1")},
		}},
	})
	if e.mgr.FinderCache().Len() != 0 {
		t.Fatal("create-into-result-set notice did not evict the finder entry")
	}
	if st := e.mgr.FinderCache().Stats(); st.Invalidations != 1 {
		t.Errorf("invalidations = %d, want 1", st.Invalidations)
	}

	// The next finder refetches and sees the new row.
	dt2 := e.begin(t)
	defer dt2.Abort(ctx)
	e.store.Seed(holding("hNew", "u1"))
	got, err := dt2.Query(ctx, byAcct("u1"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("refetched finder = %v, want h1+hNew", got)
	}
}

// TestFinderCacheKeyOnlyNoticeIsConservative: a notice from a peer that
// predates rich write descriptors carries keys only; same-table finder
// entries must still be dropped (blind-write semantics).
func TestFinderCacheKeyOnlyNoticeIsConservative(t *testing.T) {
	e := newEnv(t, WithFinderCache(true))
	e.store.Seed(holding("h1", "u1"))
	ctx := context.Background()

	dt := e.begin(t)
	if _, err := dt.Query(ctx, byAcct("u1")); err != nil {
		t.Fatal(err)
	}
	_ = dt.Abort(ctx)

	e.mgr.noteNotice(sqlstore.Notice{
		TxID: 993,
		Keys: []memento.Key{{Table: "t", ID: "unrelated"}},
	})
	if e.mgr.FinderCache().Len() != 0 {
		t.Fatal("key-only notice did not conservatively evict the same-table entry")
	}
}

// TestFinderCacheOwnCommitInvalidates: the committing edge invalidates
// its own overlapping finder entries synchronously — before its notice
// comes back (own notices are filtered), so a follow-up finder on the
// same edge never sees the pre-commit result set.
func TestFinderCacheOwnCommitInvalidates(t *testing.T) {
	e := newEnv(t, WithFinderCache(true))
	e.store.Seed(holding("h1", "u1"), holding("h2", "u1"))
	ctx := context.Background()

	dt := e.begin(t)
	if _, err := dt.Query(ctx, byAcct("u1")); err != nil {
		t.Fatal(err)
	}
	_ = dt.Abort(ctx)

	// Move h1 out of the predicate and commit.
	dt2 := e.begin(t)
	m, err := dt2.Load(ctx, memento.Key{Table: "t", ID: "h1"})
	if err != nil {
		t.Fatal(err)
	}
	m.Fields["acct"] = memento.String("u9")
	if err := dt2.Store(ctx, m); err != nil {
		t.Fatal(err)
	}
	if err := dt2.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	if e.mgr.FinderCache().Len() != 0 {
		t.Fatal("own commit left a stale finder entry behind")
	}

	dt3 := e.begin(t)
	defer dt3.Abort(ctx)
	got, err := dt3.Query(ctx, byAcct("u1"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Key.ID != "h2" {
		t.Fatalf("post-commit finder = %v, want [h2]", got)
	}
}

// TestFinderCacheConflictBlindInvalidatesAndEmitsStaleRead: losing
// validation on a row that entered the transaction via the finder cache
// must (a) evict the stale entry so a retry refetches, and (b) leave a
// stale_read forensic event — the signal that an invalidation was late.
func TestFinderCacheConflictBlindInvalidatesAndEmitsStaleRead(t *testing.T) {
	e := newEnv(t, WithFinderCache(true))
	e.store.Seed(holding("h1", "u1"), row("w", 1))
	ctx := context.Background()

	// Warm the finder cache.
	dt := e.begin(t)
	if _, err := dt.Query(ctx, byAcct("u1")); err != nil {
		t.Fatal(err)
	}
	_ = dt.Abort(ctx)

	seqBefore := obs.DefaultEvents.Seq()

	// New transaction reads through the cache, then the store moves
	// underneath it (no invalidation subscription is running).
	dt2 := e.begin(t)
	if _, err := dt2.Query(ctx, byAcct("u1")); err != nil {
		t.Fatal(err)
	}
	if _, err := e.store.ApplyCommitSet(ctx, memento.CommitSet{
		Writes: []memento.Memento{{
			Key:     memento.Key{Table: "t", ID: "h1"},
			Version: 1,
			Fields:  memento.Fields{"acct": memento.String("u1"), "x": memento.Int(1)},
		}},
	}); err != nil {
		t.Fatal(err)
	}
	m, err := dt2.Load(ctx, key("w"))
	if err != nil {
		t.Fatal(err)
	}
	m.Fields["n"] = memento.Int(2)
	if err := dt2.Store(ctx, m); err != nil {
		t.Fatal(err)
	}
	if err := dt2.Commit(ctx); err == nil {
		t.Fatal("stale finder-cached read survived validation")
	}
	if e.mgr.FinderCache().Len() != 0 {
		t.Error("conflict did not evict the stale finder entry")
	}
	var stale int
	for _, ev := range obs.DefaultEvents.Since(seqBefore) {
		if ev.Type == obs.EventStaleRead {
			stale++
			if ev.Bean != "t" || ev.Detail != "finder cache" {
				t.Errorf("stale_read event = %+v", ev)
			}
		}
	}
	if stale != 1 {
		t.Errorf("stale_read events = %d, want 1", stale)
	}
}

// TestFinderCacheLRUCapacity: the cache is bounded; the least recently
// used result set is evicted first.
func TestFinderCacheLRUCapacity(t *testing.T) {
	e := newEnv(t, WithFinderCache(true), WithFinderCacheCapacity(2))
	e.store.Seed(holding("h1", "u1"), holding("h2", "u2"), holding("h3", "u3"))
	ctx := context.Background()

	dt := e.begin(t)
	defer dt.Abort(ctx)
	for _, acct := range []string{"u1", "u2", "u1", "u3"} {
		if _, err := dt.Query(ctx, byAcct(acct)); err != nil {
			t.Fatal(err)
		}
	}
	st := e.mgr.FinderCache().Stats()
	if st.Entries != 2 || st.Evictions != 1 {
		t.Errorf("stats = %+v, want 2 entries / 1 eviction (u2 evicted)", st)
	}
	// u1 was touched after u2, so u2 is the victim: u1 still hits.
	before := e.conn.Ops()
	dt2 := e.begin(t)
	defer dt2.Abort(ctx)
	if _, err := dt2.Query(ctx, byAcct("u1")); err != nil {
		t.Fatal(err)
	}
	if ops := e.conn.Ops() - before; ops != 0 {
		t.Errorf("u1 (MRU) was evicted: %d statements", ops)
	}
}

// TestFinderCacheDegradedServeAndReconnectFlush: while the invalidation
// stream is down the cached finder result is served under the degrade
// bound — even though the store is unreachable — and the whole finder
// cache is flushed when the stream resubscribes, since notices were
// missed.
func TestFinderCacheDegradedServeAndReconnectFlush(t *testing.T) {
	store := sqlstore.New()
	defer store.Close()
	store.Seed(holding("h1", "u1"))
	ctx := context.Background()

	srv := dbwire.NewServer(storeapi.Local(store))
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()

	client := dbwire.Dial(addr)
	defer client.Close()
	mgr := NewManager(client, WithShipping(WholeSet), WithFinderCache(true), WithDegradedReads(time.Hour))
	defer mgr.Close()
	if err := mgr.Start(ctx); err != nil {
		t.Fatal(err)
	}

	// Warm the finder cache over the wire.
	dt, err := mgr.Begin(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dt.Query(ctx, byAcct("u1")); err != nil {
		t.Fatal(err)
	}
	_ = dt.Abort(ctx)
	if mgr.FinderCache().Len() != 1 {
		t.Fatal("finder cache not warm")
	}

	// Kill the stream: the manager degrades instead of clearing.
	srv.Close()
	waitFor(t, 3*time.Second, func() bool { return mgr.Degraded() })

	// The store is gone, but the degraded edge still answers the finder
	// from its cache within the bound.
	staleBefore := mgr.Stats().StaleServes
	dt2, err := mgr.Begin(ctx)
	if err != nil {
		t.Fatal(err)
	}
	got, err := dt2.Query(ctx, byAcct("u1"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Key.ID != "h1" {
		t.Fatalf("degraded finder = %v", got)
	}
	_ = dt2.Abort(ctx)
	if mgr.Stats().StaleServes == staleBefore {
		t.Error("degraded finder serve not counted as a stale serve")
	}

	// Restart on the same address; resubscription must flush the finder
	// cache — any notice during the outage was missed.
	srv2 := dbwire.NewServer(storeapi.Local(store))
	if err := srv2.Start(addr); err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	waitFor(t, 5*time.Second, func() bool { return mgr.Stats().Resubscribes >= 1 })
	waitFor(t, 3*time.Second, func() bool { return mgr.FinderCache().Len() == 0 })
}

// TestFinderCacheChaosConcurrentInvalidation hammers the finder cache
// from concurrent readers, writers, and the live invalidation stream;
// run under -race it proves the cache's locking, and every transaction
// must either commit cleanly or fail with a real conflict.
func TestFinderCacheChaosConcurrentInvalidation(t *testing.T) {
	store := sqlstore.New()
	defer store.Close()
	for i := 0; i < 8; i++ {
		store.Seed(holding(fmt.Sprintf("h%d", i), fmt.Sprintf("u%d", i%2)))
	}
	ctx := context.Background()
	mgr := NewManager(storeapi.Local(store), WithShipping(WholeSet), WithFinderCache(true))
	defer mgr.Close()
	if err := mgr.Start(ctx); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			acct := fmt.Sprintf("u%d", g%2)
			for rep := 0; rep < 25; rep++ {
				dt, err := mgr.Begin(ctx)
				if err != nil {
					errs <- err
					return
				}
				rows, err := dt.Query(ctx, byAcct(acct))
				if err != nil {
					errs <- err
					return
				}
				if g%2 == 0 && len(rows) > 0 {
					// Writers flip a counter on one row of their result set.
					m := rows[rep%len(rows)]
					m.Fields["n"] = memento.Int(m.Fields["n"].Int + 1)
					if err := dt.Store(ctx, m); err != nil {
						errs <- err
						return
					}
					if err := dt.Commit(ctx); err != nil && !errors.Is(err, sqlstore.ErrConflict) {
						errs <- err
						return
					}
				} else {
					_ = dt.Abort(ctx)
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// BenchmarkFinderCacheHit measures the warm-hit path: a repeated finder
// served entirely from the finder cache. CI enforces an allocs/op
// budget on it — the hit path must stay free of per-row re-fetch work.
func BenchmarkFinderCacheHit(b *testing.B) {
	store := sqlstore.New()
	defer store.Close()
	for i := 0; i < 10; i++ {
		store.Seed(holding(fmt.Sprintf("h%d", i), "u1"))
	}
	ctx := context.Background()
	mgr := NewManager(storeapi.Local(store), WithFinderCache(true))
	defer mgr.Close()
	q := byAcct("u1")

	// Warm.
	dt, err := mgr.Begin(ctx)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := dt.Query(ctx, q); err != nil {
		b.Fatal(err)
	}
	_ = dt.Abort(ctx)

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dt, err := mgr.Begin(ctx)
		if err != nil {
			b.Fatal(err)
		}
		rows, err := dt.Query(ctx, q)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 10 {
			b.Fatalf("rows = %d", len(rows))
		}
		_ = dt.Abort(ctx)
	}
	b.StopTimer()
	if st := mgr.FinderCache().Stats(); st.Hits < uint64(b.N) {
		b.Fatalf("hits = %d, want >= %d", st.Hits, b.N)
	}
}

package slicache

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"edgeejb/internal/component"
	"edgeejb/internal/memento"
	"edgeejb/internal/obs"
	"edgeejb/internal/sqlstore"
	"edgeejb/internal/storeapi"
	"edgeejb/internal/wire"
)

// Manager is the SLI Resource Manager: it replaces the pessimistic JDBC
// resource manager with optimistic, cache-backed data access (§2.3). It
// implements component.ResourceManager, so a container built over a
// Manager runs unmodified application code against cached entity state.
type Manager struct {
	loader  *Loader
	common  *CommonStore
	finders *FinderCache
	conn    storeapi.Conn

	invalidate    bool
	localReadOnly bool
	staleBound    time.Duration
	degradeBound  time.Duration
	now           func() time.Time

	// degraded is set while the invalidation stream is down and
	// WithDegradedReads is enabled: cached entries may be stale, and
	// reads are served from cache only within the degrade bound.
	degraded atomic.Bool

	mu      sync.Mutex
	ownTxs  map[uint64]struct{}
	ownRing []uint64
	cancel  func()
	started bool
	stop    chan struct{}
	done    chan struct{}

	stats struct {
		begins, commits, conflicts atomic.Uint64
		loads, queries             atomic.Uint64
		missFetches                atomic.Uint64
		noticesApplied             atomic.Uint64
		boundedReadsSkipped        atomic.Uint64
		resubscribes               atomic.Uint64
		degradations               atomic.Uint64
		staleServes                atomic.Uint64
	}
}

var _ component.ResourceManager = (*Manager)(nil)

// ManagerStats is a snapshot of runtime counters.
type ManagerStats struct {
	Begins         uint64
	Commits        uint64
	Conflicts      uint64
	Loads          uint64
	Queries        uint64
	MissFetches    uint64
	NoticesApplied uint64
	// BoundedReadsSkipped counts read proofs omitted from commit sets
	// under WithTimeBoundedReads.
	BoundedReadsSkipped uint64
	// Resubscribes counts invalidation-stream reconnections.
	Resubscribes uint64
	// Degradations counts entries into degraded mode (invalidation
	// stream lost while WithDegradedReads is enabled).
	Degradations uint64
	// StaleServes counts cache hits served while degraded, i.e. reads
	// answered from possibly-stale entries under the degrade bound.
	StaleServes uint64
	Cache       CommonStoreStats
	// Finders is the finder-result cache's snapshot (all zero when the
	// cache is disabled).
	Finders FinderCacheStats
}

// ManagerOption configures a Manager.
type ManagerOption interface {
	apply(*managerConfig)
}

type managerConfig struct {
	shipping       CommitShipping
	commonStore    bool
	invalidation   bool
	localReadOnly  bool
	cacheCapacity  int
	finderCache    bool
	finderCapacity int
	staleBound     time.Duration
	degradeBound   time.Duration
}

type shippingOption CommitShipping

func (o shippingOption) apply(c *managerConfig) { c.shipping = CommitShipping(o) }

// WithShipping selects the commit-shipping mode. The default is
// PerImage (combined-servers).
func WithShipping(s CommitShipping) ManagerOption { return shippingOption(s) }

type commonStoreOption bool

func (o commonStoreOption) apply(c *managerConfig) { c.commonStore = bool(o) }

// WithCommonStore toggles inter-transaction caching (default on).
// Disabling it is the "no common transient store" ablation: every
// transaction starts cold and all direct accesses miss to the
// persistent store.
func WithCommonStore(enabled bool) ManagerOption { return commonStoreOption(enabled) }

type invalidationOption bool

func (o invalidationOption) apply(c *managerConfig) { c.invalidation = bool(o) }

// WithInvalidation toggles subscription to the server's invalidation
// stream (default on). With it off, stale common-store entries are only
// discovered at commit-validation time.
func WithInvalidation(enabled bool) ManagerOption { return invalidationOption(enabled) }

type localReadOnlyOption bool

func (o localReadOnlyOption) apply(c *managerConfig) { c.localReadOnly = bool(o) }

type cacheCapacityOption int

func (o cacheCapacityOption) apply(c *managerConfig) { c.cacheCapacity = int(o) }

// WithCacheCapacity bounds the common store to n entries, evicted in
// LRU order (0 = unlimited, the default). Edge caches are
// space-constrained in practice; the capacity ablation quantifies the
// latency cost of refetching evicted beans.
func WithCacheCapacity(n int) ManagerOption { return cacheCapacityOption(n) }

type finderCacheOption bool

func (o finderCacheOption) apply(c *managerConfig) { c.finderCache = bool(o) }

// WithFinderCache toggles the transactional finder-result cache
// (default off): committed custom-finder result sets are cached by
// normalized query and invalidated when a commit notice's write set
// overlaps their footprint — Pfeifer & Lockemann's transactional method
// caching applied to the paper's custom finders. Rows served from a
// cached result still enter the transaction's read set and are
// validated optimistically at commit, so strict semantics are
// preserved; the cache only removes the high-latency finder round trip.
func WithFinderCache(enabled bool) ManagerOption { return finderCacheOption(enabled) }

type finderCapacityOption int

func (o finderCapacityOption) apply(c *managerConfig) { c.finderCapacity = int(o) }

// WithFinderCacheCapacity bounds the finder-result cache to n result
// sets, evicted in LRU order (<= 0 selects DefaultFinderCapacity).
func WithFinderCacheCapacity(n int) ManagerOption { return finderCapacityOption(n) }

type staleBoundOption time.Duration

func (o staleBoundOption) apply(c *managerConfig) { c.staleBound = time.Duration(o) }

// WithTimeBoundedReads relaxes read validation the way the middle-tier
// database caches the paper contrasts itself with do (§1.4, DBCache and
// DBProxy): cached data are "only guaranteed to be up-to-date within
// some specified time period". With a bound d > 0, a bean read from the
// common store whose cached value is younger than d is NOT validated at
// commit — its read proof is dropped from the commit set — so
// read-mostly transactions over warm caches avoid the high-latency
// validation round trip entirely. Mutations are always validated; this
// weakens only the reads. Zero (the default) keeps the paper's strict
// ACID semantics.
func WithTimeBoundedReads(d time.Duration) ManagerOption { return staleBoundOption(d) }

type degradeOption time.Duration

func (o degradeOption) apply(c *managerConfig) { c.degradeBound = time.Duration(o) }

// WithDegradedReads lets the edge keep serving reads from its cache for
// up to maxAge after the invalidation stream drops, instead of clearing
// the cache immediately. While degraded, a cache hit is served only if
// the entry is younger than maxAge (counted in StaleServes); older
// entries and misses fall through to the (likely unreachable) store, so
// staleness stays time-bounded. Time-bounded read-proof skipping is
// suspended while degraded — commits that do reach the store validate
// their full read set. The cache is cleared and the flag dropped once
// the stream resubscribes, restoring strict semantics. Zero (default)
// keeps today's behavior: clear on drop.
func WithDegradedReads(maxAge time.Duration) ManagerOption { return degradeOption(maxAge) }

// WithLocalReadOnlyCommit lets read-only transactions commit locally
// without a validation round trip. This is an ABLATION, not the paper's
// behavior: the paper validates every accessed bean at commit, which is
// why every client request costs at least one high-latency round trip
// (§4.4). Enabling it shows how much of the edge architectures' latency
// comes from read-set validation alone.
func WithLocalReadOnlyCommit(enabled bool) ManagerOption { return localReadOnlyOption(enabled) }

// NewManager builds an SLI resource manager over a datastore handle. In
// the combined-servers configuration conn reaches the database server
// directly; in split-servers it reaches the back-end server. Call Start
// to begin consuming invalidation notices and Close to stop.
func NewManager(conn storeapi.Conn, opts ...ManagerOption) *Manager {
	cfg := managerConfig{
		shipping:     PerImage,
		commonStore:  true,
		invalidation: true,
	}
	for _, o := range opts {
		o.apply(&cfg)
	}
	common := NewCommonStore()
	common.SetEnabled(cfg.commonStore)
	common.SetCapacity(cfg.cacheCapacity)
	return &Manager{
		loader:        NewLoader(conn, cfg.shipping),
		common:        common,
		finders:       NewFinderCache(cfg.finderCache, cfg.finderCapacity),
		conn:          conn,
		invalidate:    cfg.invalidation,
		localReadOnly: cfg.localReadOnly,
		staleBound:    cfg.staleBound,
		degradeBound:  cfg.degradeBound,
		now:           time.Now,
		ownTxs:        make(map[uint64]struct{}),
	}
}

// Name implements component.ResourceManager.
func (m *Manager) Name() string { return "sli" }

// SetClock overrides the manager's (and its common store's) timestamp
// source; tests use it to control entry ages deterministically.
func (m *Manager) SetClock(now func() time.Time) {
	m.now = now
	m.common.SetClock(now)
	m.finders.SetClock(now)
}

// CommonStore exposes the shared cache (for tests and diagnostics).
func (m *Manager) CommonStore() *CommonStore { return m.common }

// FinderCache exposes the finder-result cache (for tests and
// diagnostics).
func (m *Manager) FinderCache() *FinderCache { return m.finders }

// Degraded reports whether the manager is serving time-bounded stale
// reads because its invalidation stream is down (see WithDegradedReads).
func (m *Manager) Degraded() bool { return m.degraded.Load() }

// Shipping returns the commit-shipping mode in use.
func (m *Manager) Shipping() CommitShipping { return m.loader.Shipping() }

// Start subscribes to the datastore's invalidation stream and keeps it
// alive: if the stream drops (back-end restart, network blip), the
// manager clears the common store — notices may have been missed, so
// every entry is suspect — and resubscribes with backoff. It is a no-op
// when invalidation is disabled. Safe to call once; the initial
// subscription failure is returned synchronously.
func (m *Manager) Start(ctx context.Context) error {
	if !m.invalidate {
		return nil
	}
	m.mu.Lock()
	if m.started {
		m.mu.Unlock()
		return nil
	}
	m.started = true
	m.mu.Unlock()

	ch, cancel, err := m.conn.Subscribe(ctx)
	if err != nil {
		m.mu.Lock()
		m.started = false
		m.mu.Unlock()
		return err
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	m.mu.Lock()
	m.stop = stop
	m.done = done
	m.cancel = cancel
	m.mu.Unlock()

	go m.invalidationLoop(ch, stop, done)
	return nil
}

// invalidationLoop consumes notices and resubscribes after stream
// interruptions until stopped.
func (m *Manager) invalidationLoop(ch <-chan sqlstore.Notice, stop, done chan struct{}) {
	defer close(done)
	backoff := wire.Backoff{Base: 50 * time.Millisecond, Max: 2 * time.Second, Jitter: 0.5}
	for {
		m.drainNotices(ch, stop)
		select {
		case <-stop:
			return
		default:
		}
		// The stream dropped: anything cached could be stale now. With
		// degraded reads enabled the cache is kept and served under the
		// degrade bound; otherwise it is cleared immediately.
		if m.degradeBound > 0 {
			if !m.degraded.Swap(true) {
				m.stats.degradations.Add(1)
				obsDegradations.Inc()
				obs.DefaultEvents.Emit(obs.Event{Type: obs.EventDegrade, Detail: "enter"})
			}
		} else {
			m.common.Clear()
			m.finders.Clear()
		}
		for attempt := 0; ; attempt++ {
			newCh, cancel, err := m.conn.Subscribe(context.Background())
			if err == nil {
				m.mu.Lock()
				m.cancel = cancel
				m.mu.Unlock()
				// Closed while we were resubscribing?
				select {
				case <-stop:
					cancel()
					return
				default:
				}
				// Notices were missed during the outage; the cache must
				// start over before strict semantics resume.
				if m.degraded.Load() {
					m.common.Clear()
					m.finders.Clear()
					m.degraded.Store(false)
					obs.DefaultEvents.Emit(obs.Event{Type: obs.EventDegrade, Detail: "exit"})
				}
				m.stats.resubscribes.Add(1)
				obsResubscribes.Inc()
				ch = newCh
				break
			}
			if !backoff.Sleep(attempt, stop) {
				return
			}
		}
	}
}

// drainNotices consumes one subscription channel until it closes or the
// manager stops.
func (m *Manager) drainNotices(ch <-chan sqlstore.Notice, stop chan struct{}) {
	for {
		select {
		case n, ok := <-ch:
			if !ok {
				return
			}
			m.noteNotice(n)
		case <-stop:
			return
		}
	}
}

// noteNotice applies one invalidation notice and records its forensics:
// push latency (when the store stamped the commit time), the staleness
// window the eviction closed, and a structured invalidation event. Own
// commits are measured for latency but evict nothing — the cache was
// already refreshed with the after-images.
func (m *Manager) noteNotice(n sqlstore.Notice) {
	own := m.isOwnTx(n.TxID)
	var lat time.Duration
	stamped := !n.CommittedAt.IsZero()
	if stamped {
		if lat = m.now().Sub(n.CommittedAt); lat < 0 {
			lat = 0
		}
		obsInvalLatency.ObserveTrace(lat, n.OriginTrace)
	}
	ev := obs.Event{
		Type:       obs.EventInvalidation,
		OtherTrace: n.OriginTrace,
		Keys:       len(n.Keys),
		Own:        own,
		Latency:    lat,
	}
	if len(n.Keys) > 0 {
		ev.Bean = n.Keys[0].Table
		ev.Key = n.Keys[0].String()
	}
	if !own {
		ev.Evicted = m.common.Invalidate(n.Keys...)
		// Drop every cached finder result whose footprint overlaps the
		// committed writes. Own commits were invalidated synchronously at
		// commit time with exact before/after images.
		m.finders.Invalidate(n.Writes, n.Keys)
		if ev.Evicted > 0 && stamped {
			// Entries were actually dropped: the push latency bounds how
			// long they could have been served stale.
			obsStaleness.ObserveTrace(lat, n.OriginTrace)
			ev.Age = lat
		}
		m.stats.noticesApplied.Add(1)
		obsNoticesApplied.Inc()
	}
	obs.DefaultEvents.Emit(ev)
}

// Close stops the invalidation subscription, waiting for the consumer
// goroutine to exit. It does not close the datastore handle.
func (m *Manager) Close() {
	m.mu.Lock()
	stop, done, cancel := m.stop, m.done, m.cancel
	m.stop, m.done, m.cancel = nil, nil, nil
	m.mu.Unlock()
	if stop != nil {
		close(stop)
	}
	if cancel != nil {
		cancel()
	}
	if done != nil {
		<-done
	}
}

// Stats returns a snapshot of the manager's counters.
func (m *Manager) Stats() ManagerStats {
	return ManagerStats{
		Begins:              m.stats.begins.Load(),
		Commits:             m.stats.commits.Load(),
		Conflicts:           m.stats.conflicts.Load(),
		Loads:               m.stats.loads.Load(),
		Queries:             m.stats.queries.Load(),
		MissFetches:         m.stats.missFetches.Load(),
		NoticesApplied:      m.stats.noticesApplied.Load(),
		BoundedReadsSkipped: m.stats.boundedReadsSkipped.Load(),
		Resubscribes:        m.stats.resubscribes.Load(),
		Degradations:        m.stats.degradations.Load(),
		StaleServes:         m.stats.staleServes.Load(),
		Cache:               m.common.Stats(),
		Finders:             m.finders.Stats(),
	}
}

// Begin implements component.ResourceManager: it opens a per-transaction
// transient store over the common store.
func (m *Manager) Begin(ctx context.Context) (component.DataTx, error) {
	m.stats.begins.Add(1)
	return &sliTx{
		mgr:          m,
		entries:      make(map[memento.Key]*entry),
		finderSource: make(map[memento.Key]bool),
	}, nil
}

// recordOwnTx remembers a datastore transaction this manager committed,
// so the invalidation consumer can skip the corresponding notice (the
// common store was already refreshed with the after-images). The memory
// is bounded: old entries are evicted FIFO.
func (m *Manager) recordOwnTx(txID uint64) {
	const ringSize = 1024
	m.mu.Lock()
	defer m.mu.Unlock()
	m.ownTxs[txID] = struct{}{}
	m.ownRing = append(m.ownRing, txID)
	if len(m.ownRing) > ringSize {
		evict := m.ownRing[0]
		m.ownRing = m.ownRing[1:]
		delete(m.ownTxs, evict)
	}
}

func (m *Manager) isOwnTx(txID uint64) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	_, ok := m.ownTxs[txID]
	return ok
}

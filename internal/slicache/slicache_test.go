package slicache

import (
	"context"
	"errors"
	"testing"

	"edgeejb/internal/component"
	"edgeejb/internal/memento"
	"edgeejb/internal/sqlstore"
	"edgeejb/internal/storeapi"
)

func key(id string) memento.Key { return memento.Key{Table: "t", ID: id} }

func row(id string, n int64) memento.Memento {
	return memento.Memento{
		Key:    key(id),
		Fields: memento.Fields{"n": memento.Int(n)},
	}
}

func holding(id, acct string) memento.Memento {
	return memento.Memento{
		Key:    memento.Key{Table: "t", ID: id},
		Fields: memento.Fields{"acct": memento.String(acct)},
	}
}

func byAcct(acct string) memento.Query {
	return memento.Query{
		Table: "t",
		Where: []memento.Predicate{memento.Where("acct", memento.String(acct))},
	}
}

// env bundles a store, a counting handle, and a manager.
type env struct {
	store *sqlstore.Store
	conn  *storeapi.CountingConn
	mgr   *Manager
}

func newEnv(t *testing.T, opts ...ManagerOption) *env {
	t.Helper()
	store := sqlstore.New()
	t.Cleanup(store.Close)
	conn := storeapi.NewCountingConn(storeapi.Local(store))
	mgr := NewManager(conn, opts...)
	t.Cleanup(mgr.Close)
	return &env{store: store, conn: conn, mgr: mgr}
}

func (e *env) begin(t *testing.T) component.DataTx {
	t.Helper()
	dt, err := e.mgr.Begin(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return dt
}

func TestLoadMissPopulatesCommonStore(t *testing.T) {
	e := newEnv(t)
	e.store.Seed(row("1", 10))
	ctx := context.Background()

	dt := e.begin(t)
	m, err := dt.Load(ctx, key("1"))
	if err != nil {
		t.Fatal(err)
	}
	if m.Fields["n"].Int != 10 || m.Version != 1 {
		t.Errorf("loaded %v", m)
	}
	if _, ok := e.mgr.CommonStore().Get(key("1")); !ok {
		t.Error("miss did not populate the common store")
	}
	if err := dt.Abort(ctx); err != nil {
		t.Fatal(err)
	}

	// A subsequent transaction hits the common store: no fetch.
	before := e.conn.Ops()
	dt2 := e.begin(t)
	if _, err := dt2.Load(ctx, key("1")); err != nil {
		t.Fatal(err)
	}
	if got := e.conn.Ops() - before; got != 0 {
		t.Errorf("cached load cost %d statements, want 0", got)
	}
	_ = dt2.Abort(ctx)
}

func TestLoadNotFound(t *testing.T) {
	e := newEnv(t)
	ctx := context.Background()
	dt := e.begin(t)
	defer dt.Abort(ctx)
	if _, err := dt.Load(ctx, key("nope")); !errors.Is(err, sqlstore.ErrNotFound) {
		t.Fatalf("got %v, want ErrNotFound", err)
	}
}

func TestRepeatableReadWithinTransaction(t *testing.T) {
	e := newEnv(t)
	e.store.Seed(row("1", 10))
	ctx := context.Background()

	dt := e.begin(t)
	defer dt.Abort(ctx)
	if _, err := dt.Load(ctx, key("1")); err != nil {
		t.Fatal(err)
	}
	// Another transaction commits a new value behind our back.
	if _, err := e.store.ApplyCommitSet(ctx, memento.CommitSet{
		Writes: []memento.Memento{{Key: key("1"), Version: 1, Fields: memento.Fields{"n": memento.Int(99)}}},
	}); err != nil {
		t.Fatal(err)
	}
	// Our transaction must still see its before-image.
	m, err := dt.Load(ctx, key("1"))
	if err != nil {
		t.Fatal(err)
	}
	if m.Fields["n"].Int != 10 {
		t.Errorf("repeatable read violated: n = %d", m.Fields["n"].Int)
	}
}

func TestTransactionSeesOwnWrites(t *testing.T) {
	e := newEnv(t)
	e.store.Seed(row("1", 10))
	ctx := context.Background()

	dt := e.begin(t)
	defer dt.Abort(ctx)
	m, err := dt.Load(ctx, key("1"))
	if err != nil {
		t.Fatal(err)
	}
	m.Fields["n"] = memento.Int(20)
	if err := dt.Store(ctx, m); err != nil {
		t.Fatal(err)
	}
	got, err := dt.Load(ctx, key("1"))
	if err != nil {
		t.Fatal(err)
	}
	if got.Fields["n"].Int != 20 {
		t.Errorf("own write invisible: n = %d", got.Fields["n"].Int)
	}
	// The common store must NOT see uncommitted state.
	if cached, ok := e.mgr.CommonStore().Get(key("1")); ok && cached.Fields["n"].Int != 10 {
		t.Error("uncommitted write leaked into common store")
	}
}

func TestStoreWithoutLoadFails(t *testing.T) {
	e := newEnv(t)
	e.store.Seed(row("1", 10))
	ctx := context.Background()
	dt := e.begin(t)
	defer dt.Abort(ctx)
	if err := dt.Store(ctx, row("1", 20)); !errors.Is(err, sqlstore.ErrNotFound) {
		t.Fatalf("got %v, want not-found (bean not active)", err)
	}
}

func TestCommitWriteRefreshesCommonStore(t *testing.T) {
	e := newEnv(t)
	e.store.Seed(row("1", 10))
	ctx := context.Background()

	dt := e.begin(t)
	m, err := dt.Load(ctx, key("1"))
	if err != nil {
		t.Fatal(err)
	}
	m.Fields["n"] = memento.Int(11)
	if err := dt.Store(ctx, m); err != nil {
		t.Fatal(err)
	}
	if err := dt.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	if v, _ := e.store.CurrentVersion(key("1")); v != 2 {
		t.Fatalf("store version = %d, want 2", v)
	}
	cached, ok := e.mgr.CommonStore().Get(key("1"))
	if !ok {
		t.Fatal("entry evicted after own commit")
	}
	if cached.Version != 2 || cached.Fields["n"].Int != 11 {
		t.Errorf("common store stale after commit: %v", cached)
	}
}

func TestCommitConflictAbortsAndInvalidates(t *testing.T) {
	e := newEnv(t)
	e.store.Seed(row("1", 10))
	ctx := context.Background()

	dt := e.begin(t)
	m, err := dt.Load(ctx, key("1"))
	if err != nil {
		t.Fatal(err)
	}
	// Concurrent writer wins.
	if _, err := e.store.ApplyCommitSet(ctx, memento.CommitSet{
		Writes: []memento.Memento{{Key: key("1"), Version: 1, Fields: memento.Fields{"n": memento.Int(50)}}},
	}); err != nil {
		t.Fatal(err)
	}
	m.Fields["n"] = memento.Int(11)
	if err := dt.Store(ctx, m); err != nil {
		t.Fatal(err)
	}
	if err := dt.Commit(ctx); !errors.Is(err, sqlstore.ErrConflict) {
		t.Fatalf("got %v, want ErrConflict", err)
	}
	// Store unchanged by the failed commit; cache entry evicted.
	v, _ := e.store.CurrentVersion(key("1"))
	if v != 2 {
		t.Errorf("store version = %d, want 2 (winner only)", v)
	}
	if _, ok := e.mgr.CommonStore().Get(key("1")); ok {
		t.Error("stale entry survived the conflict")
	}
	if e.mgr.Stats().Conflicts != 1 {
		t.Errorf("conflicts = %d, want 1", e.mgr.Stats().Conflicts)
	}
}

func TestReadSetValidatedAtCommit(t *testing.T) {
	e := newEnv(t)
	e.store.Seed(row("r", 1), row("w", 1))
	ctx := context.Background()

	dt := e.begin(t)
	if _, err := dt.Load(ctx, key("r")); err != nil {
		t.Fatal(err)
	}
	m, err := dt.Load(ctx, key("w"))
	if err != nil {
		t.Fatal(err)
	}
	// Concurrent update of the READ (not written) bean.
	if _, err := e.store.ApplyCommitSet(ctx, memento.CommitSet{
		Writes: []memento.Memento{{Key: key("r"), Version: 1, Fields: memento.Fields{"n": memento.Int(9)}}},
	}); err != nil {
		t.Fatal(err)
	}
	m.Fields["n"] = memento.Int(2)
	if err := dt.Store(ctx, m); err != nil {
		t.Fatal(err)
	}
	// The paper's isolation: "comparing the before-image of every bean
	// accessed in the transaction" — the stale read must abort us.
	if err := dt.Commit(ctx); !errors.Is(err, sqlstore.ErrConflict) {
		t.Fatalf("stale read not detected: %v", err)
	}
}

func TestCreateCommitAndConflict(t *testing.T) {
	e := newEnv(t)
	ctx := context.Background()

	dt := e.begin(t)
	if err := dt.Create(ctx, row("new", 5)); err != nil {
		t.Fatal(err)
	}
	// Created bean visible to its own transaction.
	m, err := dt.Load(ctx, key("new"))
	if err != nil {
		t.Fatal(err)
	}
	if m.Fields["n"].Int != 5 {
		t.Errorf("created bean n = %d", m.Fields["n"].Int)
	}
	if err := dt.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	if v, _ := e.store.CurrentVersion(key("new")); v != 1 {
		t.Errorf("created version = %d, want 1", v)
	}

	// Creating the same key again must fail fast (cached as existing).
	dt2 := e.begin(t)
	defer dt2.Abort(ctx)
	if err := dt2.Create(ctx, row("new", 6)); !errors.Is(err, sqlstore.ErrExists) {
		t.Fatalf("got %v, want ErrExists", err)
	}
}

func TestCreateRaceDetectedAtCommit(t *testing.T) {
	// Two managers (two edge servers) create the same key; the second
	// commit must fail: "the system must also verify that no EJB with
	// the same key exists at commit time".
	store := sqlstore.New()
	defer store.Close()
	ctx := context.Background()
	mgrA := NewManager(storeapi.Local(store))
	defer mgrA.Close()
	mgrB := NewManager(storeapi.Local(store))
	defer mgrB.Close()

	dtA, _ := mgrA.Begin(ctx)
	dtB, _ := mgrB.Begin(ctx)
	if err := dtA.Create(ctx, row("k", 1)); err != nil {
		t.Fatal(err)
	}
	if err := dtB.Create(ctx, row("k", 2)); err != nil {
		t.Fatal(err)
	}
	if err := dtA.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	if err := dtB.Commit(ctx); !errors.Is(err, sqlstore.ErrConflict) {
		t.Fatalf("duplicate create: got %v, want ErrConflict", err)
	}
}

func TestRemoveSemantics(t *testing.T) {
	e := newEnv(t)
	e.store.Seed(row("1", 10))
	ctx := context.Background()

	dt := e.begin(t)
	if err := dt.Remove(ctx, key("1")); err != nil {
		t.Fatal(err)
	}
	if _, err := dt.Load(ctx, key("1")); !errors.Is(err, sqlstore.ErrNotFound) {
		t.Fatalf("removed bean still loadable: %v", err)
	}
	if err := dt.Remove(ctx, key("1")); !errors.Is(err, sqlstore.ErrNotFound) {
		t.Fatalf("double remove: got %v", err)
	}
	if err := dt.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	if e.store.RowCount("t") != 0 {
		t.Error("remove did not commit")
	}
	if _, ok := e.mgr.CommonStore().Get(key("1")); ok {
		t.Error("removed bean survived in common store")
	}
}

func TestRemoveRaceDetectedAtCommit(t *testing.T) {
	e := newEnv(t)
	e.store.Seed(row("1", 10))
	ctx := context.Background()

	dt := e.begin(t)
	if err := dt.Remove(ctx, key("1")); err != nil {
		t.Fatal(err)
	}
	// Concurrent delete wins; our remove must conflict ("the system
	// must also verify that the current-image still exists").
	if _, err := e.store.ApplyCommitSet(ctx, memento.CommitSet{
		Removes: []memento.ReadProof{{Key: key("1"), Version: 1}},
	}); err != nil {
		t.Fatal(err)
	}
	if err := dt.Commit(ctx); !errors.Is(err, sqlstore.ErrConflict) {
		t.Fatalf("got %v, want ErrConflict", err)
	}
}

func TestCreateThenRemoveAnnihilates(t *testing.T) {
	e := newEnv(t)
	ctx := context.Background()
	dt := e.begin(t)
	if err := dt.Create(ctx, row("x", 1)); err != nil {
		t.Fatal(err)
	}
	if err := dt.Remove(ctx, key("x")); err != nil {
		t.Fatal(err)
	}
	before := e.conn.Ops()
	if err := dt.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	if got := e.conn.Ops() - before; got != 0 {
		t.Errorf("empty commit cost %d statements, want 0", got)
	}
	if e.store.RowCount("t") != 0 {
		t.Error("annihilated create reached the store")
	}
}

func TestRemoveThenCreateBecomesUpdate(t *testing.T) {
	e := newEnv(t)
	e.store.Seed(row("1", 10))
	ctx := context.Background()
	dt := e.begin(t)
	if err := dt.Remove(ctx, key("1")); err != nil {
		t.Fatal(err)
	}
	if err := dt.Create(ctx, row("1", 42)); err != nil {
		t.Fatal(err)
	}
	if err := dt.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	res, err := storeapi.Local(e.store).AutoGet(ctx, "t", "1")
	if err != nil {
		t.Fatal(err)
	}
	if res.Mem.Fields["n"].Int != 42 || res.Mem.Version != 2 {
		t.Errorf("remove+create = %v, want n=42 v=2", res.Mem)
	}
}

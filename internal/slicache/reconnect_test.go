package slicache

import (
	"context"
	"testing"
	"time"

	"edgeejb/internal/dbwire"
	"edgeejb/internal/memento"
	"edgeejb/internal/sqlstore"
	"edgeejb/internal/storeapi"
)

// TestInvalidationStreamResubscribes: when the server carrying the
// invalidation stream restarts, the manager must clear its cache (it
// may have missed notices) and resubscribe, after which pushed
// invalidations flow again.
func TestInvalidationStreamResubscribes(t *testing.T) {
	store := sqlstore.New()
	defer store.Close()
	store.Seed(row("1", 1))
	ctx := context.Background()

	srv := dbwire.NewServer(storeapi.Local(store))
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()

	client := dbwire.Dial(addr)
	defer client.Close()
	mgr := NewManager(client, WithShipping(WholeSet))
	defer mgr.Close()
	if err := mgr.Start(ctx); err != nil {
		t.Fatal(err)
	}

	// Warm the cache.
	dt, err := mgr.Begin(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dt.Load(ctx, key("1")); err != nil {
		t.Fatal(err)
	}
	if err := dt.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	if mgr.CommonStore().Len() != 1 {
		t.Fatal("cache not warm")
	}

	// Kill the server: the subscription drops and the cache must clear.
	srv.Close()
	waitFor(t, 3*time.Second, func() bool { return mgr.CommonStore().Len() == 0 })

	// Restart on the same address; the manager must resubscribe.
	srv2 := dbwire.NewServer(storeapi.Local(store))
	if err := srv2.Start(addr); err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	waitFor(t, 5*time.Second, func() bool { return mgr.Stats().Resubscribes >= 1 })

	// Re-warm, then verify pushed invalidations flow on the new stream.
	dt2, err := mgr.Begin(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dt2.Load(ctx, key("1")); err != nil {
		t.Fatal(err)
	}
	if err := dt2.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	if mgr.CommonStore().Len() != 1 {
		t.Fatal("cache not re-warmed")
	}
	if _, err := store.ApplyCommitSet(ctx, memento.CommitSet{
		Writes: []memento.Memento{{Key: key("1"), Version: currentVersion(t, store), Fields: memento.Fields{"n": memento.Int(99)}}},
	}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 3*time.Second, func() bool {
		_, ok := mgr.CommonStore().Get(key("1"))
		return !ok
	})
}

func currentVersion(t *testing.T, s *sqlstore.Store) uint64 {
	t.Helper()
	v, err := s.CurrentVersion(key("1"))
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// TestCloseDuringResubscribeBackoff: closing the manager while it is in
// its retry loop (server still down) must not hang.
func TestCloseDuringResubscribeBackoff(t *testing.T) {
	store := sqlstore.New()
	defer store.Close()

	srv := dbwire.NewServer(storeapi.Local(store))
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	client := dbwire.Dial(srv.Addr())
	defer client.Close()
	mgr := NewManager(client)
	if err := mgr.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	srv.Close() // stream drops; manager enters retry loop

	done := make(chan struct{})
	go func() {
		mgr.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close hung during resubscription backoff")
	}
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		if cond() {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("condition not reached before deadline")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

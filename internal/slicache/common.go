package slicache

import (
	"container/list"
	"sync"
	"sync/atomic"
	"time"

	"edgeejb/internal/memento"
	"edgeejb/internal/obs"
)

// CommonStore is the shared (inter-transaction) transient datastore of
// memento instances. It is a cache of committed persistent state; it
// never holds uncommitted data. When a capacity is configured, entries
// are evicted in least-recently-used order — edge caches are
// space-constrained, which is the problem the paper's related work on
// edge data caches (§1.4, Amiri et al.) addresses.
type CommonStore struct {
	mu       sync.RWMutex
	entries  map[memento.Key]*list.Element
	lru      *list.List // front = most recently used
	bytes    int64      // estimated resident size of all entries
	capacity int        // 0 = unlimited
	enabled  bool
	now      func() time.Time

	hits          atomic.Uint64
	misses        atomic.Uint64
	invalidations atomic.Uint64
	refreshes     atomic.Uint64
	evictions     atomic.Uint64
}

// lruEntry is one cached memento plus its key for back-eviction, the
// time its value was stored (for time-bounded read modes), and its
// estimated size (for occupancy accounting).
type lruEntry struct {
	key      memento.Key
	mem      memento.Memento
	storedAt time.Time
	size     int64
}

// mementoSize estimates a cached memento's resident footprint: string
// payloads plus a fixed per-field and per-entry overhead. It is an
// occupancy signal for the slicache.bytes gauge, not an allocator
// measurement.
func mementoSize(m memento.Memento) int64 {
	size := int64(64 + len(m.Key.Table) + len(m.Key.ID))
	for name, v := range m.Fields {
		size += int64(48 + len(name) + len(v.Str))
	}
	return size
}

// CommonStoreStats is a snapshot of cache counters.
type CommonStoreStats struct {
	Hits          uint64
	Misses        uint64
	Invalidations uint64
	Refreshes     uint64
	Evictions     uint64
	Entries       int
	Bytes         int64
}

// NewCommonStore returns an empty, enabled, unbounded common store. A
// disabled store (see SetEnabled) misses on every lookup, which is the
// "no inter-transaction caching" ablation.
func NewCommonStore() *CommonStore {
	return &CommonStore{
		entries: make(map[memento.Key]*list.Element),
		lru:     list.New(),
		enabled: true,
		now:     time.Now,
	}
}

// SetEnabled toggles inter-transaction caching. Disabling also drops the
// current contents.
func (c *CommonStore) SetEnabled(enabled bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.enabled = enabled
	if !enabled {
		c.dropAllLocked()
	}
}

// dropAllLocked empties the store, keeping the occupancy gauges in sync.
// Called with c.mu held.
func (c *CommonStore) dropAllLocked() int {
	n := len(c.entries)
	c.entries = make(map[memento.Key]*list.Element)
	c.lru.Init()
	obsEntries.Add(-int64(n))
	obsBytes.Add(-c.bytes)
	c.bytes = 0
	return n
}

// SetCapacity bounds the number of cached entries; 0 means unlimited.
// Shrinking below the current size evicts LRU entries immediately.
func (c *CommonStore) SetCapacity(capacity int) {
	if capacity < 0 {
		capacity = 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.capacity = capacity
	c.evictOverflowLocked()
}

// Capacity returns the configured bound (0 = unlimited).
func (c *CommonStore) Capacity() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.capacity
}

// SetClock overrides the timestamp source; tests use it to control
// entry ages deterministically.
func (c *CommonStore) SetClock(now func() time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = now
}

// Get returns a copy of the cached memento for key, if present, marking
// it most recently used.
func (c *CommonStore) Get(key memento.Key) (memento.Memento, bool) {
	m, _, ok := c.GetWithTime(key)
	return m, ok
}

// GetWithTime is Get plus the instant the cached value was stored, which
// time-bounded read modes use to decide whether an entry is fresh
// enough to skip commit validation.
func (c *CommonStore) GetWithTime(key memento.Key) (memento.Memento, time.Time, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.enabled {
		c.misses.Add(1)
		obsMisses.Inc()
		obsMissesBy.With(key.Table).Inc()
		return memento.Memento{}, time.Time{}, false
	}
	el, ok := c.entries[key]
	if !ok {
		c.misses.Add(1)
		obsMisses.Inc()
		obsMissesBy.With(key.Table).Inc()
		return memento.Memento{}, time.Time{}, false
	}
	c.lru.MoveToFront(el)
	c.hits.Add(1)
	obsHits.Inc()
	obsHitsBy.With(key.Table).Inc()
	entry := el.Value.(*lruEntry)
	return entry.mem.Clone(), entry.storedAt, true
}

// Put caches a committed memento. Older versions never overwrite newer
// ones, so racing fills and refreshes are safe in any order.
func (c *CommonStore) Put(m memento.Memento) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.enabled {
		return
	}
	if el, ok := c.entries[m.Key]; ok {
		entry := el.Value.(*lruEntry)
		if entry.mem.Version >= m.Version {
			c.lru.MoveToFront(el)
			return
		}
		entry.mem = m.Clone()
		entry.storedAt = c.now()
		size := mementoSize(entry.mem)
		c.bytes += size - entry.size
		obsBytes.Add(size - entry.size)
		entry.size = size
		c.lru.MoveToFront(el)
		return
	}
	entry := &lruEntry{key: m.Key, mem: m.Clone(), storedAt: c.now()}
	entry.size = mementoSize(entry.mem)
	c.entries[m.Key] = c.lru.PushFront(entry)
	c.bytes += entry.size
	obsEntries.Add(1)
	obsBytes.Add(entry.size)
	c.evictOverflowLocked()
}

// Refresh is Put plus accounting: the runtime calls it after its own
// successful commits to keep entries warm instead of waiting for an
// invalidation round trip.
func (c *CommonStore) Refresh(m memento.Memento) {
	c.refreshes.Add(1)
	obsRefreshes.Inc()
	c.Put(m)
}

// Invalidate evicts the given keys (on server update notices, conflict
// aborts, and removals), returning how many were actually cached — the
// number of potentially stale serves the call prevented.
func (c *CommonStore) Invalidate(keys ...memento.Key) int {
	if len(keys) == 0 {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	evicted := 0
	for _, k := range keys {
		if el, ok := c.entries[k]; ok {
			entry := el.Value.(*lruEntry)
			c.lru.Remove(el)
			delete(c.entries, k)
			c.bytes -= entry.size
			obsEntries.Add(-1)
			obsBytes.Add(-entry.size)
			c.invalidations.Add(1)
			obsInvalidations.Inc()
			evicted++
		}
	}
	return evicted
}

// Clear evicts every entry. The runtime clears the cache after the
// invalidation stream is interrupted and re-established: notices may
// have been missed, so every entry is suspect.
func (c *CommonStore) Clear() {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := c.dropAllLocked()
	c.invalidations.Add(uint64(n))
	obsInvalidations.Add(uint64(n))
}

// Len returns the number of cached entries.
func (c *CommonStore) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.entries)
}

// Bytes returns the estimated resident size of the cached entries.
func (c *CommonStore) Bytes() int64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.bytes
}

// Stats returns a snapshot of the cache counters.
func (c *CommonStore) Stats() CommonStoreStats {
	c.mu.RLock()
	entries, bytes := len(c.entries), c.bytes
	c.mu.RUnlock()
	return CommonStoreStats{
		Hits:          c.hits.Load(),
		Misses:        c.misses.Load(),
		Invalidations: c.invalidations.Load(),
		Refreshes:     c.refreshes.Load(),
		Evictions:     c.evictions.Load(),
		Entries:       entries,
		Bytes:         bytes,
	}
}

// evictOverflowLocked drops LRU entries until within capacity. Called
// with c.mu held.
func (c *CommonStore) evictOverflowLocked() {
	if c.capacity <= 0 {
		return
	}
	for len(c.entries) > c.capacity {
		back := c.lru.Back()
		if back == nil {
			return
		}
		entry := back.Value.(*lruEntry)
		c.lru.Remove(back)
		delete(c.entries, entry.key)
		c.bytes -= entry.size
		obsEntries.Add(-1)
		obsBytes.Add(-entry.size)
		c.evictions.Add(1)
		obsEvictions.Inc()
		obs.DefaultEvents.Emit(obs.Event{
			Type: obs.EventEvict,
			Bean: entry.key.Table,
			Key:  entry.key.String(),
			Age:  c.now().Sub(entry.storedAt),
		})
	}
}

package slicache

import (
	"container/list"
	"sync"
	"sync/atomic"
	"time"

	"edgeejb/internal/memento"
)

// CommonStore is the shared (inter-transaction) transient datastore of
// memento instances. It is a cache of committed persistent state; it
// never holds uncommitted data. When a capacity is configured, entries
// are evicted in least-recently-used order — edge caches are
// space-constrained, which is the problem the paper's related work on
// edge data caches (§1.4, Amiri et al.) addresses.
type CommonStore struct {
	mu       sync.RWMutex
	entries  map[memento.Key]*list.Element
	lru      *list.List // front = most recently used
	capacity int        // 0 = unlimited
	enabled  bool
	now      func() time.Time

	hits          atomic.Uint64
	misses        atomic.Uint64
	invalidations atomic.Uint64
	refreshes     atomic.Uint64
	evictions     atomic.Uint64
}

// lruEntry is one cached memento plus its key for back-eviction and the
// time its value was stored (for time-bounded read modes).
type lruEntry struct {
	key      memento.Key
	mem      memento.Memento
	storedAt time.Time
}

// CommonStoreStats is a snapshot of cache counters.
type CommonStoreStats struct {
	Hits          uint64
	Misses        uint64
	Invalidations uint64
	Refreshes     uint64
	Evictions     uint64
	Entries       int
}

// NewCommonStore returns an empty, enabled, unbounded common store. A
// disabled store (see SetEnabled) misses on every lookup, which is the
// "no inter-transaction caching" ablation.
func NewCommonStore() *CommonStore {
	return &CommonStore{
		entries: make(map[memento.Key]*list.Element),
		lru:     list.New(),
		enabled: true,
		now:     time.Now,
	}
}

// SetEnabled toggles inter-transaction caching. Disabling also drops the
// current contents.
func (c *CommonStore) SetEnabled(enabled bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.enabled = enabled
	if !enabled {
		c.entries = make(map[memento.Key]*list.Element)
		c.lru.Init()
	}
}

// SetCapacity bounds the number of cached entries; 0 means unlimited.
// Shrinking below the current size evicts LRU entries immediately.
func (c *CommonStore) SetCapacity(capacity int) {
	if capacity < 0 {
		capacity = 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.capacity = capacity
	c.evictOverflowLocked()
}

// Capacity returns the configured bound (0 = unlimited).
func (c *CommonStore) Capacity() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.capacity
}

// SetClock overrides the timestamp source; tests use it to control
// entry ages deterministically.
func (c *CommonStore) SetClock(now func() time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = now
}

// Get returns a copy of the cached memento for key, if present, marking
// it most recently used.
func (c *CommonStore) Get(key memento.Key) (memento.Memento, bool) {
	m, _, ok := c.GetWithTime(key)
	return m, ok
}

// GetWithTime is Get plus the instant the cached value was stored, which
// time-bounded read modes use to decide whether an entry is fresh
// enough to skip commit validation.
func (c *CommonStore) GetWithTime(key memento.Key) (memento.Memento, time.Time, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.enabled {
		c.misses.Add(1)
		obsMisses.Inc()
		return memento.Memento{}, time.Time{}, false
	}
	el, ok := c.entries[key]
	if !ok {
		c.misses.Add(1)
		obsMisses.Inc()
		return memento.Memento{}, time.Time{}, false
	}
	c.lru.MoveToFront(el)
	c.hits.Add(1)
	obsHits.Inc()
	entry := el.Value.(*lruEntry)
	return entry.mem.Clone(), entry.storedAt, true
}

// Put caches a committed memento. Older versions never overwrite newer
// ones, so racing fills and refreshes are safe in any order.
func (c *CommonStore) Put(m memento.Memento) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.enabled {
		return
	}
	if el, ok := c.entries[m.Key]; ok {
		entry := el.Value.(*lruEntry)
		if entry.mem.Version >= m.Version {
			c.lru.MoveToFront(el)
			return
		}
		entry.mem = m.Clone()
		entry.storedAt = c.now()
		c.lru.MoveToFront(el)
		return
	}
	el := c.lru.PushFront(&lruEntry{key: m.Key, mem: m.Clone(), storedAt: c.now()})
	c.entries[m.Key] = el
	c.evictOverflowLocked()
}

// Refresh is Put plus accounting: the runtime calls it after its own
// successful commits to keep entries warm instead of waiting for an
// invalidation round trip.
func (c *CommonStore) Refresh(m memento.Memento) {
	c.refreshes.Add(1)
	obsRefreshes.Inc()
	c.Put(m)
}

// Invalidate evicts the given keys (on server update notices, conflict
// aborts, and removals).
func (c *CommonStore) Invalidate(keys ...memento.Key) {
	if len(keys) == 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, k := range keys {
		if el, ok := c.entries[k]; ok {
			c.lru.Remove(el)
			delete(c.entries, k)
			c.invalidations.Add(1)
			obsInvalidations.Inc()
		}
	}
}

// Clear evicts every entry. The runtime clears the cache after the
// invalidation stream is interrupted and re-established: notices may
// have been missed, so every entry is suspect.
func (c *CommonStore) Clear() {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := len(c.entries)
	c.entries = make(map[memento.Key]*list.Element)
	c.lru.Init()
	c.invalidations.Add(uint64(n))
	obsInvalidations.Add(uint64(n))
}

// Len returns the number of cached entries.
func (c *CommonStore) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.entries)
}

// Stats returns a snapshot of the cache counters.
func (c *CommonStore) Stats() CommonStoreStats {
	return CommonStoreStats{
		Hits:          c.hits.Load(),
		Misses:        c.misses.Load(),
		Invalidations: c.invalidations.Load(),
		Refreshes:     c.refreshes.Load(),
		Evictions:     c.evictions.Load(),
		Entries:       c.Len(),
	}
}

// evictOverflowLocked drops LRU entries until within capacity. Called
// with c.mu held.
func (c *CommonStore) evictOverflowLocked() {
	if c.capacity <= 0 {
		return
	}
	for len(c.entries) > c.capacity {
		back := c.lru.Back()
		if back == nil {
			return
		}
		entry := back.Value.(*lruEntry)
		c.lru.Remove(back)
		delete(c.entries, entry.key)
		c.evictions.Add(1)
		obsEvictions.Inc()
	}
}

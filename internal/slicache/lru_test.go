package slicache

import (
	"context"
	"fmt"
	"testing"

	"edgeejb/internal/memento"
)

func keyN(i int) memento.Key { return memento.Key{Table: "t", ID: fmt.Sprintf("%03d", i)} }

func rowN(i int, version uint64) memento.Memento {
	return memento.Memento{
		Key:     keyN(i),
		Version: version,
		Fields:  memento.Fields{"n": memento.Int(int64(i))},
	}
}

func TestLRUEvictsLeastRecentlyUsed(t *testing.T) {
	cs := NewCommonStore()
	cs.SetCapacity(3)
	for i := 0; i < 3; i++ {
		cs.Put(rowN(i, 1))
	}
	// Touch 0 so 1 becomes LRU.
	if _, ok := cs.Get(keyN(0)); !ok {
		t.Fatal("warm entry missing")
	}
	cs.Put(rowN(3, 1)) // evicts 1
	if _, ok := cs.Get(keyN(1)); ok {
		t.Error("LRU entry 1 not evicted")
	}
	for _, i := range []int{0, 2, 3} {
		if _, ok := cs.Get(keyN(i)); !ok {
			t.Errorf("entry %d wrongly evicted", i)
		}
	}
	if got := cs.Stats().Evictions; got != 1 {
		t.Errorf("evictions = %d, want 1", got)
	}
}

func TestLRUShrinkCapacityEvictsImmediately(t *testing.T) {
	cs := NewCommonStore()
	for i := 0; i < 10; i++ {
		cs.Put(rowN(i, 1))
	}
	cs.SetCapacity(4)
	if got := cs.Len(); got != 4 {
		t.Fatalf("len after shrink = %d, want 4", got)
	}
	// The four most recently inserted entries survive.
	for i := 6; i < 10; i++ {
		if _, ok := cs.Get(keyN(i)); !ok {
			t.Errorf("recent entry %d evicted", i)
		}
	}
	if cs.Capacity() != 4 {
		t.Errorf("capacity = %d", cs.Capacity())
	}
}

func TestLRUUnboundedByDefault(t *testing.T) {
	cs := NewCommonStore()
	for i := 0; i < 1000; i++ {
		cs.Put(rowN(i, 1))
	}
	if got := cs.Len(); got != 1000 {
		t.Fatalf("unbounded store evicted: len = %d", got)
	}
	if cs.Stats().Evictions != 0 {
		t.Error("unbounded store recorded evictions")
	}
}

func TestLRUPutRefreshesRecency(t *testing.T) {
	cs := NewCommonStore()
	cs.SetCapacity(2)
	cs.Put(rowN(0, 1))
	cs.Put(rowN(1, 1))
	// Re-put 0 (same version: value kept, recency bumped).
	cs.Put(rowN(0, 1))
	cs.Put(rowN(2, 1)) // evicts 1, not 0
	if _, ok := cs.Get(keyN(0)); !ok {
		t.Error("re-put entry evicted")
	}
	if _, ok := cs.Get(keyN(1)); ok {
		t.Error("stale-recency entry survived")
	}
}

func TestLRUVersionMonotonicityPreserved(t *testing.T) {
	cs := NewCommonStore()
	cs.SetCapacity(2)
	cs.Put(rowN(0, 5))
	cs.Put(rowN(0, 3)) // stale: ignored for value, recency bumped
	got, ok := cs.Get(keyN(0))
	if !ok || got.Version != 5 {
		t.Fatalf("got %v, want version 5", got)
	}
}

// TestCapacityBoundedManagerRefetches: with a tiny cache, the manager
// keeps working (correctness) but refetches evicted beans (more miss
// fetches than with an unbounded cache).
func TestCapacityBoundedManagerRefetches(t *testing.T) {
	e := newEnv(t, WithCacheCapacity(2))
	for i := 0; i < 8; i++ {
		e.store.Seed(rowN(i, 0))
	}
	ctx := context.Background()

	touchAll := func() {
		for i := 0; i < 8; i++ {
			dt := e.begin(t)
			if _, err := dt.Load(ctx, keyN(i)); err != nil {
				t.Fatal(err)
			}
			if err := dt.Commit(ctx); err != nil {
				t.Fatal(err)
			}
		}
	}
	touchAll()
	first := e.mgr.Stats().MissFetches
	if first != 8 {
		t.Fatalf("cold pass misses = %d, want 8", first)
	}
	touchAll()
	second := e.mgr.Stats().MissFetches - first
	// With capacity 2 and a working set of 8, the second pass must
	// refetch most beans.
	if second < 6 {
		t.Errorf("bounded cache refetched only %d of 8; capacity not enforced", second)
	}
	if e.mgr.CommonStore().Len() > 2 {
		t.Errorf("cache size %d exceeds capacity 2", e.mgr.CommonStore().Len())
	}
}

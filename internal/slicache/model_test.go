package slicache

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"edgeejb/internal/component"
	"edgeejb/internal/memento"
	"edgeejb/internal/sqlstore"
	"edgeejb/internal/storeapi"
)

// Model-based testing: random sequences of operations from two
// interleaved transactions (on two cache managers sharing one store, as
// two edge servers would) are executed both against the real stack and
// against a tiny reference model implementing the paper's semantics
// directly. Divergence in any read value, finder result, or commit
// outcome fails the test.

// modelRow is the model's committed state for one key.
type modelRow struct {
	value   int64
	version uint64
}

// model is the authoritative reference: committed rows by ID.
type model struct {
	rows map[string]modelRow
}

func newModel() *model { return &model{rows: make(map[string]modelRow)} }

// modelTx mirrors the per-transaction transient store semantics.
type modelTx struct {
	// readVersions records the version first observed per key (0 +
	// absent=false for creates).
	readVersions map[string]uint64
	// view is the transaction's working state; nil pointer = removed.
	view    map[string]*int64
	created map[string]bool
	removed map[string]bool
	dirty   map[string]bool
}

func newModelTx() *modelTx {
	return &modelTx{
		readVersions: make(map[string]uint64),
		view:         make(map[string]*int64),
		created:      make(map[string]bool),
		removed:      make(map[string]bool),
		dirty:        make(map[string]bool),
	}
}

// load returns (value, found). Mirrors sliTx.Load against the model.
func (t *modelTx) load(m *model, id string) (int64, bool) {
	if v, ok := t.view[id]; ok {
		if v == nil {
			return 0, false
		}
		return *v, true
	}
	row, ok := m.rows[id]
	if !ok {
		return 0, false
	}
	t.readVersions[id] = row.version
	val := row.value
	t.view[id] = &val
	return row.value, true
}

// store updates a loaded/created bean; returns false if not active.
func (t *modelTx) store(id string, value int64) bool {
	v, ok := t.view[id]
	if !ok || v == nil {
		return false
	}
	*v = value
	if !t.created[id] {
		t.dirty[id] = true
	}
	return true
}

// create returns false if the bean already exists in the transaction's
// view or (fast-fail like the cache) in committed state.
func (t *modelTx) create(m *model, id string, value int64) bool {
	if v, ok := t.view[id]; ok && v != nil {
		return false
	}
	if wasRemoved := t.view[id] == nil && t.removed[id]; wasRemoved {
		val := value
		t.view[id] = &val
		t.removed[id] = false
		t.dirty[id] = true
		// Re-creation after remove: stays a write against the old
		// version (readVersions already holds it).
		return true
	}
	if _, committed := m.rows[id]; committed {
		// The real cache fast-fails only when the row is in the common
		// store; our serial model always "knows" committed state, and in
		// these serial tests the common store does too (loads/queries
		// populate it and invalidation is off, with refresh on commit),
		// except for rows the OTHER manager created. To stay faithful we
		// fail fast only if this manager could know; the harness below
		// shares one store between managers, so knowledge may lag. We
		// therefore avoid generating creates for known-committed IDs in
		// the generator instead of modeling fast-fail here.
		return false
	}
	val := value
	t.view[id] = &val
	t.created[id] = true
	return true
}

// remove returns false if the bean is not loadable.
func (t *modelTx) remove(m *model, id string) bool {
	if v, ok := t.view[id]; ok {
		if v == nil {
			return false
		}
		if t.created[id] {
			delete(t.view, id)
			delete(t.created, id)
			delete(t.dirty, id)
			return true
		}
		t.view[id] = nil
		t.removed[id] = true
		delete(t.dirty, id)
		return true
	}
	if _, ok := t.load(m, id); !ok {
		return false
	}
	t.view[id] = nil
	t.removed[id] = true
	return true
}

// queryAllIDs mirrors the finder: committed rows plus the transaction's
// view overlay, sorted by ID (handled by caller comparing sets).
func (t *modelTx) queryAllIDs(m *model) map[string]int64 {
	out := make(map[string]int64)
	for id, row := range m.rows {
		out[id] = row.value
	}
	// Record read versions for rows the finder surfaces and the
	// transaction has not yet seen (they enter the read set).
	for id, row := range m.rows {
		if _, seen := t.view[id]; !seen {
			t.readVersions[id] = row.version
			val := row.value
			t.view[id] = &val
		}
	}
	// Overlay the transaction's own view.
	for id, v := range t.view {
		if v == nil {
			delete(out, id)
		} else {
			out[id] = *v
		}
	}
	return out
}

// commit validates against the model and applies on success.
func (t *modelTx) commit(m *model) bool {
	for id, ver := range t.readVersions {
		row, ok := m.rows[id]
		if t.removed[id] || !t.created[id] {
			// read, write or remove proof
			if !ok || row.version != ver {
				return false
			}
		}
	}
	for id := range t.created {
		if _, ok := m.rows[id]; ok {
			return false
		}
	}
	// Apply: only mutations reach the store — clean reads were proofs.
	for id, v := range t.view {
		switch {
		case t.removed[id] && v == nil:
			delete(m.rows, id)
		case v != nil && (t.created[id] || t.dirty[id]):
			row := m.rows[id]
			m.rows[id] = modelRow{value: *v, version: row.version + 1}
		}
	}
	return true
}

// opKind enumerates generated operations.
type opKind int

const (
	opLoad opKind = iota
	opStore
	opCreate
	opRemove
	opQuery
	opCommit
	opAbort
)

func TestModelEquivalenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		return runModelTrial(t, seed)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// runModelTrial executes one random interleaving and reports whether the
// real stack matched the model throughout.
func runModelTrial(t *testing.T, seed int64) bool {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	ctx := context.Background()

	store := sqlstore.New()
	defer store.Close()
	m := newModel()
	// Seed a few rows.
	nSeed := rng.Intn(5)
	for i := 0; i < nSeed; i++ {
		id := fmt.Sprintf("k%d", i)
		val := rng.Int63n(100)
		store.Seed(memento.Memento{
			Key:    memento.Key{Table: "t", ID: id},
			Fields: memento.Fields{"v": memento.Int(val)},
		})
		m.rows[id] = modelRow{value: val, version: 1}
	}

	// One manager, two interleaved transactions. A single manager's
	// common store is always coherent with committed state in a serial
	// interleaving (commits refresh it, conflicts and removals evict),
	// so the cache-free model below is exact. Cross-manager staleness —
	// where a real cache legitimately serves outdated values until
	// commit validation catches it — is covered by the directed
	// invalidation tests instead; a model for it would have to replicate
	// the cache itself. Invalidation is off to keep things deterministic
	// (the manager never subscribes, so no async evictions).
	mgr := NewManager(storeapi.Local(store), WithInvalidation(false))
	defer mgr.Close()

	type liveTx struct {
		dt    component.DataTx
		model *modelTx
	}
	live := make(map[int]*liveTx) // two interleaved transaction slots

	keyOf := func(id string) memento.Key { return memento.Key{Table: "t", ID: id} }
	randomID := func() string { return fmt.Sprintf("k%d", rng.Intn(8)) }

	steps := 10 + rng.Intn(60)
	for s := 0; s < steps; s++ {
		mi := rng.Intn(2)
		tx := live[mi]
		if tx == nil {
			dt, err := mgr.Begin(ctx)
			if err != nil {
				t.Logf("seed %d: begin: %v", seed, err)
				return false
			}
			tx = &liveTx{dt: dt, model: newModelTx()}
			live[mi] = tx
		}

		switch kind := opKind(rng.Intn(7)); kind {
		case opLoad:
			id := randomID()
			got, err := tx.dt.Load(ctx, keyOf(id))
			wantVal, wantOK := tx.model.load(m, id)
			if wantOK != (err == nil) {
				t.Logf("seed %d step %d: load %s found=%v want %v (err=%v)", seed, s, id, err == nil, wantOK, err)
				return false
			}
			if err == nil && got.Fields["v"].Int != wantVal {
				t.Logf("seed %d step %d: load %s = %d, want %d", seed, s, id, got.Fields["v"].Int, wantVal)
				return false
			}

		case opStore:
			id := randomID()
			val := rng.Int63n(100)
			// Only meaningful after a load; mirror the model's rule.
			wantOK := tx.model.store(id, val)
			err := tx.dt.Store(ctx, memento.Memento{
				Key:    keyOf(id),
				Fields: memento.Fields{"v": memento.Int(val)},
			})
			if wantOK != (err == nil) {
				t.Logf("seed %d step %d: store %s ok=%v want %v (err=%v)", seed, s, id, err == nil, wantOK, err)
				return false
			}

		case opCreate:
			// Avoid IDs with committed rows (see modelTx.create comment);
			// use a distinct namespace sometimes colliding within it.
			id := fmt.Sprintf("new%d", rng.Intn(4))
			if _, committed := m.rows[id]; committed {
				continue
			}
			val := rng.Int63n(100)
			wantOK := tx.model.create(m, id, val)
			err := tx.dt.Create(ctx, memento.Memento{
				Key:    keyOf(id),
				Fields: memento.Fields{"v": memento.Int(val)},
			})
			if wantOK != (err == nil) {
				t.Logf("seed %d step %d: create %s ok=%v want %v (err=%v)", seed, s, id, err == nil, wantOK, err)
				return false
			}

		case opRemove:
			id := randomID()
			wantOK := tx.model.remove(m, id)
			err := tx.dt.Remove(ctx, keyOf(id))
			if wantOK != (err == nil) {
				t.Logf("seed %d step %d: remove %s ok=%v want %v (err=%v)", seed, s, id, err == nil, wantOK, err)
				return false
			}

		case opQuery:
			got, err := tx.dt.Query(ctx, memento.Query{Table: "t"})
			if err != nil {
				t.Logf("seed %d step %d: query: %v", seed, s, err)
				return false
			}
			want := tx.model.queryAllIDs(m)
			if len(got) != len(want) {
				t.Logf("seed %d step %d: query size %d want %d", seed, s, len(got), len(want))
				return false
			}
			for _, gm := range got {
				wv, ok := want[gm.Key.ID]
				if !ok || gm.Fields["v"].Int != wv {
					t.Logf("seed %d step %d: query row %s = %d want %d (present=%v)",
						seed, s, gm.Key.ID, gm.Fields["v"].Int, wv, ok)
					return false
				}
			}

		case opCommit:
			err := tx.dt.Commit(ctx)
			wantOK := tx.model.commit(m)
			delete(live, mi)
			if wantOK != (err == nil) {
				t.Logf("seed %d step %d: commit ok=%v want %v (err=%v)", seed, s, err == nil, wantOK, err)
				return false
			}
			if err != nil && !errors.Is(err, sqlstore.ErrConflict) {
				t.Logf("seed %d step %d: commit failed with non-conflict %v", seed, s, err)
				return false
			}

		case opAbort:
			if err := tx.dt.Abort(ctx); err != nil {
				t.Logf("seed %d step %d: abort: %v", seed, s, err)
				return false
			}
			delete(live, mi)
		}
	}
	// Final: commit or abort leftovers, then compare committed state.
	for mi, tx := range live {
		err := tx.dt.Commit(ctx)
		wantOK := tx.model.commit(m)
		if wantOK != (err == nil) {
			t.Logf("seed %d: final commit mgr %d ok=%v want %v (err=%v)", seed, mi, err == nil, wantOK, err)
			return false
		}
	}
	// Committed store state must equal the model.
	conn := storeapi.Local(store)
	scan, err := conn.AutoQuery(ctx, memento.Query{Table: "t"})
	if err != nil {
		t.Logf("seed %d: final scan: %v", seed, err)
		return false
	}
	rows := scan.Mems
	if len(rows) != len(m.rows) {
		t.Logf("seed %d: final row count %d want %d", seed, len(rows), len(m.rows))
		return false
	}
	for _, r := range rows {
		want, ok := m.rows[r.Key.ID]
		if !ok || r.Fields["v"].Int != want.value || r.Version != want.version {
			t.Logf("seed %d: final row %s = (%d, v%d), want (%d, v%d)",
				seed, r.Key.ID, r.Fields["v"].Int, r.Version, want.value, want.version)
			return false
		}
	}
	return true
}

package slicache

import (
	"context"
	"testing"
	"time"

	"edgeejb/internal/dbwire"
	"edgeejb/internal/memento"
	"edgeejb/internal/obs"
	"edgeejb/internal/sqlstore"
	"edgeejb/internal/storeapi"
)

// TestNoticePipelineAcrossResubscribe drives the invalidation→event
// pipeline through a stream outage: the manager degrades, misses
// commits, resubscribes, and then receives fresh notices. No staleness
// window or push latency recorded across that sequence may be negative
// or absurd (the degraded gap must not leak into the histograms).
func TestNoticePipelineAcrossResubscribe(t *testing.T) {
	store := sqlstore.New()
	defer store.Close()
	store.Seed(row("1", 1))
	ctx := context.Background()

	srv := dbwire.NewServer(storeapi.Local(store))
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()

	client := dbwire.Dial(addr)
	defer client.Close()
	mgr := NewManager(client, WithShipping(WholeSet), WithDegradedReads(time.Minute))
	defer mgr.Close()
	if err := mgr.Start(ctx); err != nil {
		t.Fatal(err)
	}

	// Warm the cache.
	dt, err := mgr.Begin(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dt.Load(ctx, key("1")); err != nil {
		t.Fatal(err)
	}
	if err := dt.Commit(ctx); err != nil {
		t.Fatal(err)
	}

	obsBefore := obs.Default.Snapshot()
	seqBefore := obs.DefaultEvents.Seq()

	// Kill the stream: the manager degrades instead of clearing.
	srv.Close()
	waitFor(t, 3*time.Second, func() bool { return mgr.Degraded() })

	// A commit lands while the edge is deaf; its notice is lost.
	if _, err := store.ApplyCommitSet(ctx, memento.CommitSet{
		Writes: []memento.Memento{{Key: key("1"), Version: currentVersion(t, store), Fields: memento.Fields{"n": memento.Int(50)}}},
	}); err != nil {
		t.Fatal(err)
	}

	// Restart; the manager resubscribes, clears, and exits degraded mode.
	srv2 := dbwire.NewServer(storeapi.Local(store))
	if err := srv2.Start(addr); err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	waitFor(t, 5*time.Second, func() bool { return mgr.Stats().Resubscribes >= 1 && !mgr.Degraded() })

	// Re-warm, then push one post-recovery notice through.
	dt2, err := mgr.Begin(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dt2.Load(ctx, key("1")); err != nil {
		t.Fatal(err)
	}
	if err := dt2.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	noticeCtx, noticeTrace := obs.WithNewTrace(ctx)
	if _, err := store.ApplyCommitSet(noticeCtx, memento.CommitSet{
		Writes: []memento.Memento{{Key: key("1"), Version: currentVersion(t, store), Fields: memento.Fields{"n": memento.Int(99)}}},
	}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 3*time.Second, func() bool {
		_, ok := mgr.CommonStore().Get(key("1"))
		return !ok
	})

	events := obs.DefaultEvents.Since(seqBefore)
	var degradeEnter, degradeExit, postRecovery bool
	for _, e := range events {
		switch e.Type {
		case obs.EventDegrade:
			degradeEnter = degradeEnter || e.Detail == "enter"
			degradeExit = degradeExit || e.Detail == "exit"
		case obs.EventInvalidation:
			if e.Latency < 0 || e.Latency > time.Minute || e.Age < 0 || e.Age > time.Minute {
				t.Errorf("absurd invalidation timing across resubscribe: %+v", e)
			}
			if e.OtherTrace == noticeTrace && !e.Own {
				postRecovery = true
				if e.Evicted < 1 {
					t.Errorf("post-recovery notice evicted %d entries, want >= 1", e.Evicted)
				}
			}
		}
	}
	if !degradeEnter || !degradeExit {
		t.Errorf("degrade events missing: enter=%v exit=%v", degradeEnter, degradeExit)
	}
	if !postRecovery {
		t.Error("post-recovery invalidation event not emitted")
	}

	diff := obs.Default.Diff(obsBefore)
	for _, name := range []string{"slicache.invalidation_latency", "slicache.staleness_window"} {
		h := diff.Histograms[name]
		if h.Max < 0 || h.Max > time.Minute {
			t.Errorf("%s max = %v across resubscribe", name, h.Max)
		}
	}
	if diff.Histograms["slicache.invalidation_latency"].Count == 0 {
		t.Error("invalidation latency histogram recorded nothing")
	}
}

// TestNoteNoticeClampsAndSkips unit-checks the notice bookkeeping edge
// cases: a clock-skewed commit time clamps to zero latency, and an
// unstamped (legacy) notice records no latency and no staleness window.
func TestNoteNoticeClampsAndSkips(t *testing.T) {
	store := sqlstore.New()
	defer store.Close()
	mgr := NewManager(storeapi.Local(store), WithInvalidation(false))
	defer mgr.Close()
	now := time.Unix(1000, 0)
	mgr.SetClock(func() time.Time { return now })
	mgr.CommonStore().Put(row("1", 1))

	obsBefore := obs.Default.Snapshot()
	seqBefore := obs.DefaultEvents.Seq()

	// Committed "in the future" relative to this edge's clock: skew, not
	// time travel — the latency must clamp to zero, not go negative.
	mgr.noteNotice(sqlstore.Notice{
		TxID: 7, Keys: []memento.Key{key("1")},
		CommittedAt: now.Add(3 * time.Second), OriginTrace: 42,
	})
	// Unstamped notice (no CommittedAt): applied, but no timing recorded.
	mgr.CommonStore().Put(row("1", 2))
	mgr.noteNotice(sqlstore.Notice{TxID: 8, Keys: []memento.Key{key("1")}})

	events := obs.DefaultEvents.Since(seqBefore)
	if len(events) != 2 {
		t.Fatalf("got %d events, want 2", len(events))
	}
	for _, e := range events {
		if e.Latency < 0 || e.Age < 0 {
			t.Errorf("negative timing: %+v", e)
		}
		if e.Evicted != 1 {
			t.Errorf("evicted = %d, want 1: %+v", e.Evicted, e)
		}
	}
	if events[1].Latency != 0 || events[1].Age != 0 {
		t.Errorf("unstamped notice recorded timing: %+v", events[1])
	}

	diff := obs.Default.Diff(obsBefore)
	if got := diff.Histograms["slicache.invalidation_latency"].Count; got != 1 {
		t.Errorf("latency observations = %d, want 1 (unstamped notice must not observe)", got)
	}
	// The skewed notice evicted entries, so it closes a (clamped) window;
	// the unstamped one must not.
	if got := diff.Histograms["slicache.staleness_window"].Count; got != 1 {
		t.Errorf("staleness observations = %d, want 1", got)
	}
	// The clamped observation lands in the zero-duration bucket. (Max is
	// not diffable, so the all-time max can't be asserted here.)
	if got := diff.Histograms["slicache.staleness_window"].Buckets[0]; got != 1 {
		t.Errorf("zero-bucket staleness observations = %d, want 1 (clamp failed)", got)
	}
}

package slicache

import (
	"context"
	"errors"
	"testing"
	"time"

	"edgeejb/internal/memento"
	"edgeejb/internal/sqlstore"
)

// fakeClock is a controllable timestamp source.
type fakeClock struct {
	t time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 7, 6, 12, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func TestBoundedReadsSkipFreshValidation(t *testing.T) {
	e := newEnv(t, WithShipping(WholeSet), WithTimeBoundedReads(10*time.Second))
	clock := newFakeClock()
	e.mgr.SetClock(clock.now)
	e.store.Seed(row("1", 1))
	ctx := context.Background()

	// Warm the cache (the miss fetch itself costs one statement; the
	// commit of a fresh-read-only transaction must cost zero).
	dt := e.begin(t)
	if _, err := dt.Load(ctx, key("1")); err != nil {
		t.Fatal(err)
	}
	if err := dt.Commit(ctx); err != nil {
		t.Fatal(err)
	}

	before := e.conn.Ops()
	dt2 := e.begin(t)
	if _, err := dt2.Load(ctx, key("1")); err != nil {
		t.Fatal(err)
	}
	if err := dt2.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	if got := e.conn.Ops() - before; got != 0 {
		t.Errorf("fresh bounded read-only commit cost %d statements, want 0", got)
	}
	if e.mgr.Stats().BoundedReadsSkipped == 0 {
		t.Error("no bounded reads recorded")
	}
}

func TestBoundedReadsValidateOnceStale(t *testing.T) {
	e := newEnv(t, WithShipping(WholeSet), WithTimeBoundedReads(10*time.Second))
	clock := newFakeClock()
	e.mgr.SetClock(clock.now)
	e.store.Seed(row("1", 1))
	ctx := context.Background()

	dt := e.begin(t)
	if _, err := dt.Load(ctx, key("1")); err != nil {
		t.Fatal(err)
	}
	if err := dt.Commit(ctx); err != nil {
		t.Fatal(err)
	}

	// Entry ages beyond the bound: validation resumes.
	clock.advance(time.Minute)
	before := e.conn.Ops()
	dt2 := e.begin(t)
	if _, err := dt2.Load(ctx, key("1")); err != nil {
		t.Fatal(err)
	}
	if err := dt2.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	if got := e.conn.Ops() - before; got != 1 {
		t.Errorf("stale bounded read-only commit cost %d statements, want 1 (validation)", got)
	}
}

func TestBoundedReadsCanObserveStaleData(t *testing.T) {
	// The semantic cost of the relaxation: a bounded read can commit
	// having observed a value that was concurrently overwritten — the
	// "time-based guarantees" of §1.4, not ACID.
	e := newEnv(t, WithShipping(WholeSet), WithTimeBoundedReads(time.Hour))
	e.store.Seed(row("1", 10))
	ctx := context.Background()

	// Warm the cache with n=10.
	dt := e.begin(t)
	if _, err := dt.Load(ctx, key("1")); err != nil {
		t.Fatal(err)
	}
	if err := dt.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	// Concurrent writer moves the row to n=99 (no invalidation
	// subscription in this env).
	if _, err := e.store.ApplyCommitSet(ctx, memento.CommitSet{
		Writes: []memento.Memento{{Key: key("1"), Version: 1, Fields: memento.Fields{"n": memento.Int(99)}}},
	}); err != nil {
		t.Fatal(err)
	}
	// A strict transaction would abort; the bounded one commits with the
	// stale value.
	dt2 := e.begin(t)
	m, err := dt2.Load(ctx, key("1"))
	if err != nil {
		t.Fatal(err)
	}
	if m.Fields["n"].Int != 10 {
		t.Fatalf("expected the stale cached value, got %v", m)
	}
	if err := dt2.Commit(ctx); err != nil {
		t.Fatalf("bounded read-only commit should succeed despite staleness: %v", err)
	}
}

func TestBoundedReadsNeverWeakenWrites(t *testing.T) {
	e := newEnv(t, WithShipping(WholeSet), WithTimeBoundedReads(time.Hour))
	e.store.Seed(row("1", 10))
	ctx := context.Background()

	// Warm, then concurrently overwrite.
	dt := e.begin(t)
	if _, err := dt.Load(ctx, key("1")); err != nil {
		t.Fatal(err)
	}
	if err := dt.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := e.store.ApplyCommitSet(ctx, memento.CommitSet{
		Writes: []memento.Memento{{Key: key("1"), Version: 1, Fields: memento.Fields{"n": memento.Int(99)}}},
	}); err != nil {
		t.Fatal(err)
	}
	// A write based on the stale cached image MUST still conflict.
	dt2 := e.begin(t)
	m, err := dt2.Load(ctx, key("1"))
	if err != nil {
		t.Fatal(err)
	}
	m.Fields["n"] = memento.Int(11)
	if err := dt2.Store(ctx, m); err != nil {
		t.Fatal(err)
	}
	if err := dt2.Commit(ctx); !errors.Is(err, sqlstore.ErrConflict) {
		t.Fatalf("stale write committed under bounded reads: %v", err)
	}
}

func TestStrictModeIsDefault(t *testing.T) {
	e := newEnv(t, WithShipping(WholeSet))
	e.store.Seed(row("1", 1))
	ctx := context.Background()

	dt := e.begin(t)
	if _, err := dt.Load(ctx, key("1")); err != nil {
		t.Fatal(err)
	}
	if err := dt.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	if e.mgr.Stats().BoundedReadsSkipped != 0 {
		t.Error("strict mode skipped read validation")
	}
}

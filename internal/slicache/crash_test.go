package slicache

import (
	"context"
	"sync"
	"testing"
	"time"

	"edgeejb/internal/dbwire"
	"edgeejb/internal/memento"
	"edgeejb/internal/sqlstore"
	"edgeejb/internal/storeapi"
)

// TestReconnectRepeatedBackendRestart: the edge must survive the server
// behind it crashing and restarting REPEATEDLY — every round must clear
// the suspect cache, resubscribe, and deliver invalidations on the new
// stream. A single-restart test can pass on code that wedges its retry
// state after the first recovery; three rounds cannot.
func TestReconnectRepeatedBackendRestart(t *testing.T) {
	store := sqlstore.New()
	defer store.Close()
	store.Seed(row("1", 1))
	ctx := context.Background()

	srv := dbwire.NewServer(storeapi.Local(store))
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()

	client := dbwire.Dial(addr)
	defer client.Close()
	mgr := NewManager(client, WithShipping(WholeSet))
	defer mgr.Close()
	if err := mgr.Start(ctx); err != nil {
		t.Fatal(err)
	}

	warm := func() {
		t.Helper()
		dt, err := mgr.Begin(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := dt.Load(ctx, key("1")); err != nil {
			t.Fatal(err)
		}
		if err := dt.Commit(ctx); err != nil {
			t.Fatal(err)
		}
		if mgr.CommonStore().Len() != 1 {
			t.Fatal("cache not warm")
		}
	}
	warm()

	const restarts = 3
	for round := 1; round <= restarts; round++ {
		srv.Close()
		// The drop must clear the cache: notices may have been missed.
		waitFor(t, 3*time.Second, func() bool { return mgr.CommonStore().Len() == 0 })

		srv = dbwire.NewServer(storeapi.Local(store))
		if err := srv.Start(addr); err != nil {
			t.Fatalf("restart %d: %v", round, err)
		}
		waitFor(t, 5*time.Second, func() bool { return mgr.Stats().Resubscribes >= uint64(round) })

		// The new stream must deliver: re-warm, mutate externally, and
		// require the eviction. A stale entry surviving here means the
		// manager is trusting a dead subscription.
		warm()
		if _, err := store.ApplyCommitSet(ctx, memento.CommitSet{
			Writes: []memento.Memento{{
				Key:     key("1"),
				Version: currentVersion(t, store),
				Fields:  memento.Fields{"n": memento.Int(int64(100 + round))},
			}},
		}); err != nil {
			t.Fatal(err)
		}
		waitFor(t, 3*time.Second, func() bool {
			_, ok := mgr.CommonStore().Get(key("1"))
			return !ok
		})
	}
	srv.Close()
}

// TestReconnectDegradedReads: with WithDegradedReads the edge keeps
// serving cached reads for up to the bound while the back-end is
// unreachable, refuses them beyond it, and re-validates (clears) once
// the stream returns.
func TestReconnectDegradedReads(t *testing.T) {
	store := sqlstore.New()
	defer store.Close()
	store.Seed(row("1", 1))
	ctx := context.Background()

	srv := dbwire.NewServer(storeapi.Local(store))
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()

	client := dbwire.Dial(addr)
	defer client.Close()

	const bound = time.Minute
	var clockMu sync.Mutex
	now := time.Now()
	clock := func() time.Time {
		clockMu.Lock()
		defer clockMu.Unlock()
		return now
	}
	advance := func(d time.Duration) {
		clockMu.Lock()
		now = now.Add(d)
		clockMu.Unlock()
	}

	mgr := NewManager(client, WithShipping(WholeSet), WithDegradedReads(bound))
	mgr.SetClock(clock)
	defer mgr.Close()
	if err := mgr.Start(ctx); err != nil {
		t.Fatal(err)
	}

	// Warm the cache, then take the back-end away.
	dt, err := mgr.Begin(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dt.Load(ctx, key("1")); err != nil {
		t.Fatal(err)
	}
	if err := dt.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	waitFor(t, 5*time.Second, mgr.Degraded)

	// Degraded, within the bound: the cached entry still serves.
	if mgr.CommonStore().Len() != 1 {
		t.Fatal("degraded mode cleared the cache")
	}
	dt2, err := mgr.Begin(ctx)
	if err != nil {
		t.Fatal(err)
	}
	m, err := dt2.Load(ctx, key("1"))
	if err != nil {
		t.Fatalf("stale read within bound failed: %v", err)
	}
	if m.Fields["n"].Int != 1 {
		t.Fatalf("served wrong value: %+v", m)
	}
	_ = dt2.Abort(ctx)
	if got := mgr.Stats().StaleServes; got != 1 {
		t.Fatalf("StaleServes = %d, want 1", got)
	}

	// Beyond the bound the entry is too old to trust: the read must
	// fall through to the (unreachable) store and fail.
	advance(bound + time.Second)
	dt3, err := mgr.Begin(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dt3.Load(ctx, key("1")); err == nil {
		t.Fatal("read beyond the degrade bound served stale data")
	}
	_ = dt3.Abort(ctx)

	// Back-end returns: resubscribe must clear the cache and drop the
	// degraded flag, restoring strict semantics.
	srv2 := dbwire.NewServer(storeapi.Local(store))
	if err := srv2.Start(addr); err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	waitFor(t, 5*time.Second, func() bool { return !mgr.Degraded() })
	if mgr.CommonStore().Len() != 0 {
		t.Fatal("reconnect did not clear the possibly-stale cache")
	}
	if mgr.Stats().Degradations != 1 {
		t.Fatalf("Degradations = %d, want 1", mgr.Stats().Degradations)
	}
}

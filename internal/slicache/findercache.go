package slicache

import (
	"container/list"
	"sync"
	"sync/atomic"
	"time"

	"edgeejb/internal/memento"
)

// FinderCache is the transactional finder-result cache: a bounded LRU
// of committed query results keyed by normalized query, the
// transactional method caching of Pfeifer & Lockemann applied to the
// paper's custom finders. Each entry carries the footprint the query
// covered; an incoming commit notice invalidates every entry whose
// footprint overlaps the committed write set — a row moving into OR out
// of a predicate's result set both evict, which per-key version bumps
// alone cannot express. Correctness at use time still rests on
// optimistic validation: rows served from a cached result enter the
// transaction's read set and are proven at commit like any other read.
type FinderCache struct {
	mu       sync.Mutex
	enabled  bool
	capacity int // 0 = unlimited
	entries  map[string]*list.Element
	lru      *list.List // front = most recently used
	now      func() time.Time

	hits          atomic.Uint64
	misses        atomic.Uint64
	invalidations atomic.Uint64
	evictions     atomic.Uint64
}

// finderEntry is one cached result set plus the footprint it covered.
type finderEntry struct {
	ckey     string
	table    string
	mems     []memento.Memento // committed rows; treated as immutable
	fp       memento.Footprint
	storedAt time.Time
}

// FinderCacheStats is a snapshot of finder-cache counters.
type FinderCacheStats struct {
	Hits          uint64
	Misses        uint64
	Invalidations uint64
	Evictions     uint64
	Entries       int
}

// DefaultFinderCapacity bounds the finder cache when no explicit
// capacity is configured. Finder entries hold whole result sets, so the
// default is deliberately smaller than typical entity-cache bounds.
const DefaultFinderCapacity = 1024

// NewFinderCache returns an empty finder cache. A disabled cache misses
// on every lookup and stores nothing — today's always-refetch behavior.
func NewFinderCache(enabled bool, capacity int) *FinderCache {
	if capacity <= 0 {
		capacity = DefaultFinderCapacity
	}
	return &FinderCache{
		enabled:  enabled,
		capacity: capacity,
		entries:  make(map[string]*list.Element),
		lru:      list.New(),
		now:      time.Now,
	}
}

// Enabled reports whether the cache serves lookups.
func (c *FinderCache) Enabled() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.enabled
}

// SetClock overrides the timestamp source (tests).
func (c *FinderCache) SetClock(now func() time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = now
}

// Get returns the cached result set for a query, if present: the
// committed rows (read-only — callers clone before mutating), the
// footprint the result covered, and when it was stored. Lookup only —
// the caller decides whether a returned entry is actually servable
// (degraded-mode age checks) and records the hit or miss accordingly.
func (c *FinderCache) Get(q memento.Query) ([]memento.Memento, memento.Footprint, time.Time, bool) {
	ck := q.CacheKey()
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.enabled {
		return nil, memento.Footprint{}, time.Time{}, false
	}
	el, ok := c.entries[ck]
	if !ok {
		return nil, memento.Footprint{}, time.Time{}, false
	}
	c.lru.MoveToFront(el)
	e := el.Value.(*finderEntry)
	return e.mems, e.fp, e.storedAt, true
}

// Hit records one served lookup for a finder on table.
func (c *FinderCache) Hit(table string) {
	c.hits.Add(1)
	obsFinderHits.Inc()
	obsFinderHitsBy.With(table).Inc()
}

// Miss records one lookup that fell through to the persistent store.
func (c *FinderCache) Miss(table string) {
	c.misses.Add(1)
	obsFinderMisses.Inc()
	obsFinderMissesBy.With(table).Inc()
}

// Put stores a committed result set and the footprint it covered. The
// rows are retained as given and must not be mutated afterwards (the
// cache runtime only ever hands out clones of them).
func (c *FinderCache) Put(q memento.Query, mems []memento.Memento, fp memento.Footprint) {
	ck := q.CacheKey()
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.enabled {
		return
	}
	e := &finderEntry{ckey: ck, table: q.Table, mems: mems, fp: fp, storedAt: c.now()}
	if el, ok := c.entries[ck]; ok {
		el.Value = e
		c.lru.MoveToFront(el)
		return
	}
	c.entries[ck] = c.lru.PushFront(e)
	obsFinderEntries.Add(1)
	for c.capacity > 0 && len(c.entries) > c.capacity {
		c.removeLocked(c.lru.Back())
		c.evictions.Add(1)
	}
}

// removeLocked drops one LRU element, keeping the gauge in sync.
func (c *FinderCache) removeLocked(el *list.Element) {
	if el == nil {
		return
	}
	e := el.Value.(*finderEntry)
	delete(c.entries, e.ckey)
	c.lru.Remove(el)
	obsFinderEntries.Add(-1)
}

// Invalidate drops every entry whose footprint overlaps the committed
// write set and returns how many were dropped. When the notice carries
// no rich write descriptors (a peer that predates them), the keys are
// treated as blind writes: any entry reading the same table is dropped,
// which is conservative but safe.
func (c *FinderCache) Invalidate(writes []memento.WriteDesc, keys []memento.Key) int {
	if len(writes) == 0 {
		if len(keys) == 0 {
			return 0
		}
		writes = make([]memento.WriteDesc, len(keys))
		for i, k := range keys {
			writes[i] = memento.WriteDesc{Key: k}
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.entries) == 0 {
		return 0
	}
	var drop []*list.Element
	for el := c.lru.Front(); el != nil; el = el.Next() {
		if el.Value.(*finderEntry).fp.Overlaps(writes) {
			drop = append(drop, el)
		}
	}
	for _, el := range drop {
		c.removeLocked(el)
	}
	if n := len(drop); n > 0 {
		c.invalidations.Add(uint64(n))
		obsFinderInvalidations.Add(uint64(n))
		for _, el := range drop {
			obsFinderInvalidationsBy.With(el.Value.(*finderEntry).table).Inc()
		}
	}
	return len(drop)
}

// Clear empties the cache (stream loss, resubscription, shutdown).
func (c *FinderCache) Clear() {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := len(c.entries)
	if n == 0 {
		return
	}
	c.entries = make(map[string]*list.Element)
	c.lru.Init()
	obsFinderEntries.Add(-int64(n))
}

// Len returns the number of cached result sets.
func (c *FinderCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Stats returns a snapshot of the cache's counters.
func (c *FinderCache) Stats() FinderCacheStats {
	c.mu.Lock()
	entries := len(c.entries)
	c.mu.Unlock()
	return FinderCacheStats{
		Hits:          c.hits.Load(),
		Misses:        c.misses.Load(),
		Invalidations: c.invalidations.Load(),
		Evictions:     c.evictions.Load(),
		Entries:       entries,
	}
}

package slicache

import (
	"context"
	"fmt"

	"edgeejb/internal/memento"
	"edgeejb/internal/storeapi"
)

// CommitShipping selects how a transaction's commit set reaches the
// validator, which is the architectural difference between the paper's
// two cache deployments (§2.4, §4.4):
//
//   - PerImage (combined-servers / ES/RDB): the edge server drives
//     validation statement-by-statement against the database, paying one
//     round trip per memento image plus begin/commit.
//   - WholeSet (split-servers / ES/RBES): the edge server ships the
//     entire commit set to the back-end server in a single round trip;
//     the back-end performs the per-image work over its low-latency path
//     to the database.
type CommitShipping int

// Shipping modes.
const (
	// PerImage drives optimistic validation one statement per memento
	// image (combined-servers).
	PerImage CommitShipping = iota + 1
	// WholeSet ships the whole commit set in one round trip
	// (split-servers).
	WholeSet
)

// String names the shipping mode.
func (s CommitShipping) String() string {
	switch s {
	case PerImage:
		return "per-image"
	case WholeSet:
		return "whole-set"
	default:
		return "invalid"
	}
}

// CommitOutcome reports a successful optimistic commit.
type CommitOutcome struct {
	// TxID identifies the datastore transaction that applied the set,
	// used to filter the cache's own commits out of the invalidation
	// stream.
	TxID uint64
	// TxIDs lists every participating transaction when the set committed
	// across several datacenter shards — each shard broadcasts its own
	// notice, so all of them must be filtered as the cache's own. Nil
	// for single-store commits.
	TxIDs []uint64
	// NewVersions maps every mutated key to its new row version.
	NewVersions map[memento.Key]uint64
}

// Loader is how the cache runtime reaches persistent state: cache-miss
// fetches, custom-finder queries, and commit-set validation. Every
// method is a short, independent datastore interaction, decoupled from
// the application transaction (§2.3).
type Loader struct {
	conn     storeapi.Conn
	shipping CommitShipping
}

// NewLoader builds a loader over a datastore handle. In the
// combined-servers configuration conn reaches the database server; in
// split-servers it reaches the back-end server.
func NewLoader(conn storeapi.Conn, shipping CommitShipping) *Loader {
	return &Loader{conn: conn, shipping: shipping}
}

// Shipping returns the loader's commit-shipping mode.
func (l *Loader) Shipping() CommitShipping { return l.shipping }

// FetchOne loads one entity's current persistent state (a cache miss).
// The result carries the footprint the access covered.
func (l *Loader) FetchOne(ctx context.Context, key memento.Key) (storeapi.GetResult, error) {
	return l.conn.AutoGet(ctx, key.Table, key.ID)
}

// RunQuery evaluates a custom finder against the persistent store, which
// is the only store guaranteed to have the entire potential result set
// (§2.2). The result carries the footprint the query covered, which is
// what the finder-result cache keys its invalidation on.
func (l *Loader) RunQuery(ctx context.Context, q memento.Query) (storeapi.QueryResult, error) {
	return l.conn.AutoQuery(ctx, q)
}

// Commit validates and applies a commit set according to the shipping
// mode. On conflict it returns an error matching sqlstore.ErrConflict.
func (l *Loader) Commit(ctx context.Context, cs memento.CommitSet) (CommitOutcome, error) {
	switch l.shipping {
	case WholeSet:
		res, err := l.conn.ApplyCommitSet(ctx, cs)
		if err != nil {
			return CommitOutcome{}, err
		}
		return CommitOutcome{TxID: res.TxID, TxIDs: res.TxIDs, NewVersions: res.NewVersions}, nil
	case PerImage:
		return l.commitPerImage(ctx, cs)
	default:
		return CommitOutcome{}, fmt.Errorf("slicache: invalid shipping mode %d", l.shipping)
	}
}

// commitPerImage is the combined-servers commit: one database access per
// memento image. "The combined-servers configuration requires multiple
// database server accesses, one per memento image" (§4.4).
func (l *Loader) commitPerImage(ctx context.Context, cs memento.CommitSet) (CommitOutcome, error) {
	txn, err := l.conn.Begin(ctx)
	if err != nil {
		return CommitOutcome{}, err
	}
	abort := func(err error) (CommitOutcome, error) {
		_ = txn.Abort(ctx)
		return CommitOutcome{}, err
	}
	for _, r := range cs.Reads {
		want := r.Version
		if r.Absent {
			want = 0
		}
		if err := txn.CheckVersion(ctx, r.Key, want); err != nil {
			return abort(err)
		}
	}
	newVersions := make(map[memento.Key]uint64, len(cs.Writes)+len(cs.Creates))
	for _, w := range cs.Writes {
		if err := txn.CheckedPut(ctx, w); err != nil {
			return abort(err)
		}
		newVersions[w.Key] = w.Version + 1
	}
	for _, c := range cs.Creates {
		create := c
		create.Version = 0
		if err := txn.CheckedPut(ctx, create); err != nil {
			return abort(err)
		}
		newVersions[c.Key] = 1
	}
	for _, r := range cs.Removes {
		if err := txn.CheckedDelete(ctx, r.Key, r.Version); err != nil {
			return abort(err)
		}
	}
	if err := txn.Commit(ctx); err != nil {
		return CommitOutcome{}, err
	}
	return CommitOutcome{TxID: txn.ID(), NewVersions: newVersions}, nil
}

// Package slicache implements the paper's core contribution: the Single
// Logical Image (SLI) EJB caching runtime. A cache-enhanced application
// server keeps transactionally-consistent cached copies of entity state:
//
//   - a per-transaction transient store tracks every bean a transaction
//     touches, with its before-image (the state and version first
//     observed) and its current state;
//   - a common transient store, shared across transactions, provides
//     inter-transaction caching: beans cached by one transaction are
//     visible to concurrent and subsequent transactions (§2.3);
//   - concurrency control is optimistic (detection-based, deferred
//     validity checking): at commit, the transaction's before-images are
//     validated against the persistent store, and the after-images are
//     applied only if no conflict exists;
//   - the persistent store pushes invalidation notices after commits, and
//     the runtime evicts the affected common-store entries.
//
// The runtime implements component.ResourceManager, so applications
// written against the component container are cache-enabled without any
// code change — the transparency requirement of §1.3.
//
// Cache effectiveness is observable through the slicache.* metrics
// (hits, misses, conflicts, invalidations, ...), and the remote work a
// transaction causes — miss fetches, finder queries, commit shipping —
// is timed as slicache.* trace spans (see OBSERVABILITY.md).
package slicache

package slicache

import (
	"context"
	"testing"

	"edgeejb/internal/memento"
)

// TestFinderBasicResultSet: the finder runs against the persistent
// store and returns matching rows.
func TestFinderBasicResultSet(t *testing.T) {
	e := newEnv(t)
	e.store.Seed(holding("h1", "u1"), holding("h2", "u1"), holding("h3", "u2"))
	ctx := context.Background()

	dt := e.begin(t)
	defer dt.Abort(ctx)
	got, err := dt.Query(ctx, byAcct("u1"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Key.ID != "h1" || got[1].Key.ID != "h2" {
		t.Fatalf("finder = %v", got)
	}
	// Finder results populate the common store.
	if _, ok := e.mgr.CommonStore().Get(memento.Key{Table: "t", ID: "h1"}); !ok {
		t.Error("finder results not cached")
	}
}

// TestFinderDoesNotOverlayOwnUpdates: "the runtime ensures that result
// set elements that were cached prior to the custom finder invocation
// are not overlaid with the current persistent state" (§2.2).
func TestFinderDoesNotOverlayOwnUpdates(t *testing.T) {
	e := newEnv(t)
	e.store.Seed(holding("h1", "u1"))
	ctx := context.Background()

	dt := e.begin(t)
	defer dt.Abort(ctx)
	m, err := dt.Load(ctx, memento.Key{Table: "t", ID: "h1"})
	if err != nil {
		t.Fatal(err)
	}
	m.Fields["acct"] = memento.String("u1")
	m.Fields["qty"] = memento.Int(42) // tx-local edit
	if err := dt.Store(ctx, m); err != nil {
		t.Fatal(err)
	}
	got, err := dt.Query(ctx, byAcct("u1"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("finder = %v", got)
	}
	if got[0].Fields["qty"].Int != 42 {
		t.Error("finder overlaid the transaction's own update with persistent state")
	}
}

// TestFinderSeesOwnCreatesAndHidesOwnRemoves: the finder evaluates
// against the transient home, so created beans appear and removed beans
// do not — even though the persistent store says otherwise.
func TestFinderSeesOwnCreatesAndHidesOwnRemoves(t *testing.T) {
	e := newEnv(t)
	e.store.Seed(holding("h1", "u1"), holding("h2", "u1"))
	ctx := context.Background()

	dt := e.begin(t)
	defer dt.Abort(ctx)
	if err := dt.Create(ctx, holding("hNew", "u1")); err != nil {
		t.Fatal(err)
	}
	if err := dt.Remove(ctx, memento.Key{Table: "t", ID: "h1"}); err != nil {
		t.Fatal(err)
	}
	got, err := dt.Query(ctx, byAcct("u1"))
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]string, 0, len(got))
	for _, m := range got {
		ids = append(ids, m.Key.ID)
	}
	if len(ids) != 2 || ids[0] != "h2" || ids[1] != "hNew" {
		t.Fatalf("finder ids = %v, want [h2 hNew]", ids)
	}
}

// TestFinderUpdateMovesRowOutOfResultSet: a bean updated so it no longer
// matches must not be returned by the transient finder.
func TestFinderUpdateMovesRowOutOfResultSet(t *testing.T) {
	e := newEnv(t)
	e.store.Seed(holding("h1", "u1"))
	ctx := context.Background()

	dt := e.begin(t)
	defer dt.Abort(ctx)
	key := memento.Key{Table: "t", ID: "h1"}
	m, err := dt.Load(ctx, key)
	if err != nil {
		t.Fatal(err)
	}
	m.Fields["acct"] = memento.String("u9")
	if err := dt.Store(ctx, m); err != nil {
		t.Fatal(err)
	}
	got, err := dt.Query(ctx, byAcct("u1"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("moved-out bean still in result set: %v", got)
	}
	got, err = dt.Query(ctx, byAcct("u9"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("moved-in bean missing: %v", got)
	}
}

// TestFinderPhantoms: repeating a finder in one transaction CAN grow the
// result set when other transactions commit matching rows — the
// repeatable-read (not serializable) isolation the paper documents
// (§2.2). Beans already read keep their before-images.
func TestFinderPhantoms(t *testing.T) {
	e := newEnv(t)
	e.store.Seed(holding("h1", "u1"))
	ctx := context.Background()

	dt := e.begin(t)
	defer dt.Abort(ctx)
	got, err := dt.Query(ctx, byAcct("u1"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("first finder = %v", got)
	}
	// Another transaction commits a new matching row AND updates h1.
	if _, err := e.store.ApplyCommitSet(ctx, memento.CommitSet{
		Creates: []memento.Memento{holding("h2", "u1")},
		Writes: []memento.Memento{{
			Key:     memento.Key{Table: "t", ID: "h1"},
			Version: 1,
			Fields:  memento.Fields{"acct": memento.String("u1"), "marker": memento.Int(1)},
		}},
	}); err != nil {
		t.Fatal(err)
	}
	got, err = dt.Query(ctx, byAcct("u1"))
	if err != nil {
		t.Fatal(err)
	}
	// The phantom h2 appears...
	if len(got) != 2 {
		t.Fatalf("second finder = %v, want phantom h2 included", got)
	}
	// ...but h1 keeps the state this transaction first observed.
	for _, m := range got {
		if m.Key.ID == "h1" {
			if !m.Fields["marker"].IsZero() {
				t.Error("h1's before-image was overlaid by the repeated finder")
			}
		}
	}
}

// TestFinderResultsEnterReadSet: beans brought in by a finder are
// validated at commit like direct reads.
func TestFinderResultsEnterReadSet(t *testing.T) {
	e := newEnv(t)
	e.store.Seed(holding("h1", "u1"), row("w", 1))
	ctx := context.Background()

	dt := e.begin(t)
	if _, err := dt.Query(ctx, byAcct("u1")); err != nil {
		t.Fatal(err)
	}
	// Concurrent update of the finder-read bean.
	if _, err := e.store.ApplyCommitSet(ctx, memento.CommitSet{
		Writes: []memento.Memento{{
			Key:     memento.Key{Table: "t", ID: "h1"},
			Version: 1,
			Fields:  memento.Fields{"acct": memento.String("u1"), "x": memento.Int(1)},
		}},
	}); err != nil {
		t.Fatal(err)
	}
	// Write something so the commit validates remotely.
	m, err := dt.Load(ctx, key("w"))
	if err != nil {
		t.Fatal(err)
	}
	m.Fields["n"] = memento.Int(2)
	if err := dt.Store(ctx, m); err != nil {
		t.Fatal(err)
	}
	if err := dt.Commit(ctx); err == nil {
		t.Fatal("stale finder read not validated at commit")
	}
}

// TestFinderLimit honors Limit after merging with the transient store.
func TestFinderLimit(t *testing.T) {
	e := newEnv(t)
	e.store.Seed(holding("h1", "u1"), holding("h2", "u1"), holding("h3", "u1"))
	ctx := context.Background()
	dt := e.begin(t)
	defer dt.Abort(ctx)
	q := byAcct("u1")
	q.Limit = 2
	got, err := dt.Query(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("limit ignored: %d rows", len(got))
	}
}

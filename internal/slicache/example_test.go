package slicache_test

import (
	"context"
	"fmt"

	"edgeejb/internal/memento"
	"edgeejb/internal/slicache"
	"edgeejb/internal/sqlstore"
	"edgeejb/internal/storeapi"
)

// Example walks the SLI cache through the paper's §2 lifecycle: a miss
// populates the common transient store, a second transaction hits it,
// and an optimistic commit validates before-images and applies
// after-images.
func Example() {
	store := sqlstore.New()
	defer store.Close()
	store.Seed(memento.Memento{
		Key:    memento.Key{Table: "account", ID: "uid-1"},
		Fields: memento.Fields{"balance": memento.Int(100)},
	})

	mgr := slicache.NewManager(storeapi.Local(store),
		slicache.WithShipping(slicache.WholeSet))
	defer mgr.Close()
	ctx := context.Background()
	key := memento.Key{Table: "account", ID: "uid-1"}

	// Transaction 1: miss, update, commit.
	dt, _ := mgr.Begin(ctx)
	m, _ := dt.Load(ctx, key) // cache miss -> fetched from the store
	m.Fields["balance"] = memento.Int(150)
	_ = dt.Store(ctx, m)
	if err := dt.Commit(ctx); err != nil {
		fmt.Println("commit 1:", err)
	}

	// Transaction 2: served from the common store, no fetch.
	dt2, _ := mgr.Begin(ctx)
	m2, _ := dt2.Load(ctx, key)
	_ = dt2.Abort(ctx)

	st := mgr.Stats()
	fmt.Printf("balance=%d version=%d\n", m2.Fields["balance"].Int, m2.Version)
	fmt.Printf("missFetches=%d cacheHits=%d\n", st.MissFetches, st.Cache.Hits)
	// Output:
	// balance=150 version=2
	// missFetches=1 cacheHits=1
}

package slicache

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"edgeejb/internal/memento"
	"edgeejb/internal/obs"
	"edgeejb/internal/sqlstore"
)

// entryState tracks what a transaction has done to a cached bean.
type entryState int

const (
	stateClean entryState = iota + 1
	stateDirty
	stateCreated
	stateRemoved
)

// entry is one bean in the per-transaction transient store.
type entry struct {
	// before is the state first observed by this transaction (the
	// before-image, §2.1); before.Version == 0 for created beans.
	before memento.Memento
	// current is the transaction's working state (becomes the
	// after-image at commit).
	current memento.Memento
	state   entryState
	// fetchedAt is when the before-image was known current at the
	// persistent store (or stored into the common cache). Time-bounded
	// read modes use it to decide whether the read proof may be skipped.
	fetchedAt time.Time
}

// sliTx is the per-transaction transient store plus the optimistic
// transaction logic of §2.2–2.3. It implements component.DataTx.
type sliTx struct {
	mgr     *Manager
	entries map[memento.Key]*entry
	// fp accumulates the footprint of every persistent-store access this
	// transaction made: keys fetched directly plus the predicates and
	// result keys of every finder. It is what the access "declares" about
	// the committed state it observed.
	fp memento.Footprint
	// finderSource marks keys whose before-image entered the transaction
	// from the finder-result cache rather than a fresh store read. A
	// conflict on such a key is a stale cached finder result that slipped
	// past invalidation — forensically distinct from an ordinary race.
	finderSource map[memento.Key]bool
	done         bool
}

// Footprint returns a snapshot of the read footprint the transaction
// has accumulated so far.
func (t *sliTx) Footprint() memento.Footprint { return t.fp.Clone() }

// Load implements the direct-access cache population path (§2.2 case 1):
// per-transaction store, then common store, then the persistent store
// via a short independent transaction.
func (t *sliTx) Load(ctx context.Context, key memento.Key) (memento.Memento, error) {
	if t.done {
		return memento.Memento{}, sqlstore.ErrTxDone
	}
	t.mgr.stats.loads.Add(1)
	if e, ok := t.entries[key]; ok {
		if e.state == stateRemoved {
			return memento.Memento{}, fmt.Errorf("%w: %s removed in transaction", sqlstore.ErrNotFound, key)
		}
		return e.current.Clone(), nil
	}
	if m, storedAt, ok := t.mgr.common.GetWithTime(key); ok {
		if t.mgr.degraded.Load() {
			// The invalidation stream is down: this entry may be stale.
			// Serve it only within the degrade bound; older entries fall
			// through to the store so staleness stays time-bounded.
			if age := t.mgr.now().Sub(storedAt); age > t.mgr.degradeBound {
				ok = false
			} else {
				t.mgr.stats.staleServes.Add(1)
				obsStaleServes.Inc()
				// How stale could this serve be? Bounded by the entry's age,
				// since no invalidation has been seen since it was stored.
				obsStaleServeAge.ObserveTrace(age, obs.TraceID(ctx))
			}
		}
		if ok {
			t.fp.AddKey(key)
			t.entries[key] = &entry{
				before:    m.Clone(),
				current:   m.Clone(),
				state:     stateClean,
				fetchedAt: storedAt,
			}
			return m, nil
		}
	}
	fctx, sp := obs.StartSpan(ctx, "slicache.miss_fetch")
	res, err := t.mgr.loader.FetchOne(fctx, key)
	sp.End()
	if err != nil {
		return memento.Memento{}, err
	}
	t.mgr.stats.missFetches.Add(1)
	obsMissFetches.Inc()
	t.fp.Merge(res.FP)
	m := res.Mem
	t.mgr.common.Put(m)
	t.entries[key] = &entry{
		before:    m.Clone(),
		current:   m.Clone(),
		state:     stateClean,
		fetchedAt: t.mgr.now(),
	}
	return m, nil
}

// Store registers an updated after-image. The bean must have been
// loaded or created in this transaction (the container always finds
// before it updates).
func (t *sliTx) Store(ctx context.Context, m memento.Memento) error {
	if t.done {
		return sqlstore.ErrTxDone
	}
	e, ok := t.entries[m.Key]
	if !ok || e.state == stateRemoved {
		return fmt.Errorf("%w: %s not active in transaction", sqlstore.ErrNotFound, m.Key)
	}
	cur := m.Clone()
	cur.Version = e.before.Version
	e.current = cur
	if e.state == stateClean {
		e.state = stateDirty
	}
	return nil
}

// Create registers a new bean (§2.2 case 3). Existence of the key is
// re-verified at commit time; the transaction fails fast only when its
// own view already contains the key.
func (t *sliTx) Create(ctx context.Context, m memento.Memento) error {
	if t.done {
		return sqlstore.ErrTxDone
	}
	if e, ok := t.entries[m.Key]; ok && e.state != stateRemoved {
		return fmt.Errorf("%w: %s already active in transaction", sqlstore.ErrExists, m.Key)
	}
	if _, cached := t.mgr.common.Get(m.Key); cached {
		if _, ok := t.entries[m.Key]; !ok {
			return fmt.Errorf("%w: %s cached as existing", sqlstore.ErrExists, m.Key)
		}
	}
	if e, ok := t.entries[m.Key]; ok && e.state == stateRemoved {
		// Remove followed by create in one transaction is a logical
		// update of the persistent row.
		cur := m.Clone()
		cur.Version = e.before.Version
		e.current = cur
		if e.before.Version == 0 {
			e.state = stateCreated
		} else {
			e.state = stateDirty
		}
		return nil
	}
	cur := m.Clone()
	cur.Version = 0
	t.entries[m.Key] = &entry{
		before:  memento.Memento{Key: m.Key},
		current: cur,
		state:   stateCreated,
	}
	return nil
}

// Remove registers deletion. The system verifies at commit time that
// the current image still exists (§2.3). Removing a bean the
// transaction has not touched loads it first to capture a before-image.
func (t *sliTx) Remove(ctx context.Context, key memento.Key) error {
	if t.done {
		return sqlstore.ErrTxDone
	}
	e, ok := t.entries[key]
	if !ok {
		if _, err := t.Load(ctx, key); err != nil {
			return err
		}
		e = t.entries[key]
	}
	switch e.state {
	case stateRemoved:
		return fmt.Errorf("%w: %s already removed in transaction", sqlstore.ErrNotFound, key)
	case stateCreated:
		// Never persisted: the create and remove annihilate.
		delete(t.entries, key)
		return nil
	default:
		e.state = stateRemoved
		return nil
	}
}

// Query implements the custom-finder population path (§2.2 case 2): run
// the finder against the persistent store, populate the cache without
// overlaying beans this transaction already holds (so the application
// sees its prior updates), then evaluate the finder against the
// transient store. The result is repeatable-read isolation: re-running
// a finder may grow the result set (phantoms), but beans already read
// keep the state this transaction first observed.
func (t *sliTx) Query(ctx context.Context, q memento.Query) ([]memento.Memento, error) {
	if t.done {
		return nil, sqlstore.ErrTxDone
	}
	t.mgr.stats.queries.Add(1)
	now := t.mgr.now()
	// Transactional finder-result caching: serve the committed result set
	// from the finder cache when a coherent copy is available, skipping
	// the high-latency store round trip. The rows still enter the
	// transaction's read set with their original fetch time, so commit
	// validation (and time-bounded-read age checks) treat them exactly
	// like a fresh fetch made at storedAt.
	var persisted []memento.Memento
	fetchedAt := now
	fromFinder := false
	if t.mgr.finders.Enabled() {
		if mems, fp, storedAt, ok := t.mgr.finders.Get(q); ok {
			serve := true
			if t.mgr.degraded.Load() {
				// Stream down: the cached result may be stale. Honor the same
				// degrade bound direct reads do.
				if age := now.Sub(storedAt); age > t.mgr.degradeBound {
					serve = false
				} else {
					t.mgr.stats.staleServes.Add(1)
					obsStaleServes.Inc()
					obsStaleServeAge.ObserveTrace(age, obs.TraceID(ctx))
				}
			}
			if serve {
				t.mgr.finders.Hit(q.Table)
				persisted = mems
				fetchedAt = storedAt
				fromFinder = true
				t.fp.Merge(fp)
			}
		}
		if !fromFinder {
			t.mgr.finders.Miss(q.Table)
		}
	}
	if !fromFinder {
		qctx, sp := obs.StartSpan(ctx, "slicache.query")
		res, err := t.mgr.loader.RunQuery(qctx, q)
		sp.End()
		if err != nil {
			return nil, err
		}
		persisted = res.Mems
		t.fp.Merge(res.FP)
		t.mgr.finders.Put(q, res.Mems, res.FP)
	}
	for _, m := range persisted {
		if !fromFinder {
			// Freshly fetched rows warm the common store; cached-finder rows
			// do not re-enter it, which would misstate their age.
			t.mgr.common.Put(m)
		}
		if _, ok := t.entries[m.Key]; ok {
			continue // never overlay the transaction's own view
		}
		if fromFinder {
			t.finderSource[m.Key] = true
		}
		t.entries[m.Key] = &entry{
			before:    m.Clone(),
			current:   m.Clone(),
			state:     stateClean,
			fetchedAt: fetchedAt,
		}
	}
	// Run the finder against the transient store.
	var out []memento.Memento
	for _, e := range t.entries {
		if e.state == stateRemoved || e.current.Key.Table != q.Table {
			continue
		}
		if q.Matches(e.current) {
			out = append(out, e.current.Clone())
		}
	}
	q.Sort(out)
	return q.Cap(out), nil
}

// Commit builds the commit set (before-image proofs plus after-images)
// and ships it to the validator. On success the common store is
// refreshed with the new committed state; on conflict every key the
// transaction touched is evicted, since the persistent state is known
// to have moved.
func (t *sliTx) Commit(ctx context.Context) error {
	if t.done {
		return sqlstore.ErrTxDone
	}
	t.done = true

	cs := t.buildCommitSet()
	if cs.IsEmpty() {
		t.mgr.stats.commits.Add(1)
		obsCommits.Inc()
		return nil
	}
	if cs.Mutations() == 0 && t.mgr.localReadOnly {
		// Ablation only (not the paper's behavior): commit read-only
		// transactions locally without validating the read set. The
		// paper's runtime validates every accessed bean at commit, which
		// is why "each client request involves at least one round-trip
		// call to the back-end server" (§4.4).
		t.mgr.stats.commits.Add(1)
		obsCommits.Inc()
		return nil
	}

	cctx, sp := obs.StartSpan(ctx, "slicache.commit")
	outcome, err := t.mgr.loader.Commit(cctx, cs)
	sp.End()
	if err != nil {
		t.mgr.stats.conflicts.Add(1)
		obsConflicts.Inc()
		t.noteConflict(ctx, err)
		// Conservatively evict everything this transaction touched: at
		// least one entry is known stale.
		keys := make([]memento.Key, 0, len(t.entries))
		for k := range t.entries {
			keys = append(keys, k)
		}
		t.mgr.common.Invalidate(keys...)
		// Same for cached finder results over those keys (blind, since the
		// winner's writes are unknown here) — otherwise a retry would be
		// served the very result set that just lost validation. The
		// winner's own notice handles everything else.
		t.mgr.finders.Invalidate(nil, keys)
		return err
	}
	t.mgr.recordOwnTx(outcome.TxID)
	for _, id := range outcome.TxIDs {
		if id != outcome.TxID {
			t.mgr.recordOwnTx(id)
		}
	}
	t.mgr.stats.commits.Add(1)
	obsCommits.Inc()

	// Refresh the common store with committed after-images and evict
	// removed beans. Cached finder results are invalidated synchronously
	// with exact before/after images — own commits are filtered out of
	// the notice stream, so this is the only place they are applied.
	var ownWrites []memento.WriteDesc
	for _, e := range t.entries {
		switch e.state {
		case stateDirty, stateCreated:
			m := e.current.Clone()
			if v, ok := outcome.NewVersions[m.Key]; ok {
				m.Version = v
				t.mgr.common.Refresh(m)
			}
			w := memento.WriteDesc{Key: e.current.Key, After: e.current.Fields}
			if e.state == stateDirty {
				w.Before = e.before.Fields
			}
			ownWrites = append(ownWrites, w)
		case stateRemoved:
			t.mgr.common.Invalidate(e.current.Key)
			ownWrites = append(ownWrites, memento.WriteDesc{Key: e.current.Key, Before: e.before.Fields})
		}
	}
	if len(ownWrites) > 0 {
		t.mgr.finders.Invalidate(ownWrites, nil)
	}
	return nil
}

// noteConflict records the forensics of a failed validation: the
// per-bean conflict counter, the loser's read-version age, and a
// structured conflict event pairing the loser's trace with the winner's
// (when the error carries attribution — lock-timeout conflicts and
// unattributed stores do not).
func (t *sliTx) noteConflict(ctx context.Context, err error) {
	var ce *sqlstore.ConflictError
	if !errors.As(err, &ce) {
		return
	}
	obsConflictsBy.With(ce.Key.Table).Inc()
	trace := obs.TraceID(ctx)
	var readAge time.Duration
	if e, ok := t.entries[ce.Key]; ok && !e.fetchedAt.IsZero() {
		if readAge = t.mgr.now().Sub(e.fetchedAt); readAge < 0 {
			readAge = 0
		}
		obsConflictReadAge.ObserveTrace(readAge, trace)
	}
	obs.DefaultEvents.Emit(obs.Event{
		Type:       obs.EventConflict,
		Op:         obs.Op(ctx),
		Bean:       ce.Key.Table,
		Key:        ce.Key.String(),
		Trace:      trace,
		OtherTrace: ce.WinnerTrace,
		Age:        readAge,
		Detail:     ce.Detail,
	})
	if t.finderSource[ce.Key] {
		// The losing read came from the finder-result cache: a stale
		// cached result survived to validation. Correctness held (the
		// commit aborted), but a clean run should never see this — it
		// means an invalidation was late or lost.
		obs.DefaultEvents.Emit(obs.Event{
			Type:       obs.EventStaleRead,
			Op:         obs.Op(ctx),
			Bean:       ce.Key.Table,
			Key:        ce.Key.String(),
			Trace:      trace,
			OtherTrace: ce.WinnerTrace,
			Age:        readAge,
			Detail:     "finder cache",
		})
	}
}

// Abort discards the per-transaction store. Cached common-store entries
// remain valid: they reflect committed state regardless of this
// transaction's fate.
func (t *sliTx) Abort(ctx context.Context) error {
	t.done = true
	t.entries = nil
	return nil
}

// buildCommitSet converts the per-transaction store into the wire-level
// commit set, with deterministic ordering for reproducible validation.
func (t *sliTx) buildCommitSet() memento.CommitSet {
	var cs memento.CommitSet
	keys := make([]memento.Key, 0, len(t.entries))
	for k := range t.entries {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Table != keys[j].Table {
			return keys[i].Table < keys[j].Table
		}
		return keys[i].ID < keys[j].ID
	})
	now := t.mgr.now()
	for _, k := range keys {
		e := t.entries[k]
		switch e.state {
		case stateClean:
			// Time-bounded read mode (§1.4 contrast): fresh-enough reads
			// need no proof — they carry only the weak, time-based
			// guarantee the bound declares.
			// Suspended while degraded: stale serves already weakened the
			// reads, so any commit that reaches the store must prove them.
			if b := t.mgr.staleBound; b > 0 && !t.mgr.degraded.Load() && now.Sub(e.fetchedAt) <= b {
				t.mgr.stats.boundedReadsSkipped.Add(1)
				continue
			}
			cs.Reads = append(cs.Reads, memento.ReadProof{Key: k, Version: e.before.Version})
		case stateDirty:
			after := e.current.Clone()
			after.Version = e.before.Version
			cs.Writes = append(cs.Writes, after)
		case stateCreated:
			after := e.current.Clone()
			after.Version = 0
			cs.Creates = append(cs.Creates, after)
		case stateRemoved:
			cs.Removes = append(cs.Removes, memento.ReadProof{Key: k, Version: e.before.Version})
		}
	}
	return cs
}

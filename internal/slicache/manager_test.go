package slicache

import (
	"context"
	"testing"
	"time"

	"edgeejb/internal/memento"
	"edgeejb/internal/sqlstore"
	"edgeejb/internal/storeapi"
)

// commitOneWrite loads key "1", bumps n, and commits.
func commitOneWrite(t *testing.T, mgr *Manager) {
	t.Helper()
	ctx := context.Background()
	dt, err := mgr.Begin(ctx)
	if err != nil {
		t.Fatal(err)
	}
	m, err := dt.Load(ctx, key("1"))
	if err != nil {
		t.Fatal(err)
	}
	m.Fields["n"] = memento.Int(m.Fields["n"].Int + 1)
	if err := dt.Store(ctx, m); err != nil {
		t.Fatal(err)
	}
	if err := dt.Commit(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestPerImageShippingStatementCount(t *testing.T) {
	e := newEnv(t, WithShipping(PerImage))
	e.store.Seed(row("r", 1), row("w", 1))
	ctx := context.Background()

	dt := e.begin(t)
	if _, err := dt.Load(ctx, key("r")); err != nil { // miss: 1 AutoGet
		t.Fatal(err)
	}
	m, err := dt.Load(ctx, key("w")) // miss: 1 AutoGet
	if err != nil {
		t.Fatal(err)
	}
	m.Fields["n"] = memento.Int(2)
	if err := dt.Store(ctx, m); err != nil {
		t.Fatal(err)
	}
	before := e.conn.Ops()
	if err := dt.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	// Combined-servers commit: begin + CheckVersion(r) + CheckedPut(w)
	// + commit = 4 statements, "one per memento image" plus brackets.
	if got := e.conn.Ops() - before; got != 4 {
		t.Errorf("per-image commit cost %d statements, want 4", got)
	}
}

func TestWholeSetShippingSingleStatement(t *testing.T) {
	e := newEnv(t, WithShipping(WholeSet))
	e.store.Seed(row("r", 1), row("w", 1))
	ctx := context.Background()

	dt := e.begin(t)
	if _, err := dt.Load(ctx, key("r")); err != nil {
		t.Fatal(err)
	}
	m, err := dt.Load(ctx, key("w"))
	if err != nil {
		t.Fatal(err)
	}
	m.Fields["n"] = memento.Int(2)
	if err := dt.Store(ctx, m); err != nil {
		t.Fatal(err)
	}
	before := e.conn.Ops()
	if err := dt.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	// Split-servers commit: the whole set in ONE round trip.
	if got := e.conn.Ops() - before; got != 1 {
		t.Errorf("whole-set commit cost %d statements, want 1", got)
	}
}

func TestReadOnlyCommitStillValidates(t *testing.T) {
	e := newEnv(t, WithShipping(WholeSet))
	e.store.Seed(row("1", 1))
	ctx := context.Background()

	dt := e.begin(t)
	if _, err := dt.Load(ctx, key("1")); err != nil {
		t.Fatal(err)
	}
	before := e.conn.Ops()
	if err := dt.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	// "each client request involves at least one round-trip call to the
	// back-end server" — read-only transactions validate their read set.
	if got := e.conn.Ops() - before; got != 1 {
		t.Errorf("read-only commit cost %d statements, want 1", got)
	}
}

func TestLocalReadOnlyCommitAblation(t *testing.T) {
	e := newEnv(t, WithShipping(WholeSet), WithLocalReadOnlyCommit(true))
	e.store.Seed(row("1", 1))
	ctx := context.Background()

	dt := e.begin(t)
	if _, err := dt.Load(ctx, key("1")); err != nil {
		t.Fatal(err)
	}
	before := e.conn.Ops()
	if err := dt.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	if got := e.conn.Ops() - before; got != 0 {
		t.Errorf("ablated read-only commit cost %d statements, want 0", got)
	}
}

func TestCommonStoreDisabledAblation(t *testing.T) {
	e := newEnv(t, WithCommonStore(false))
	e.store.Seed(row("1", 1))
	ctx := context.Background()

	for i := 0; i < 3; i++ {
		dt := e.begin(t)
		if _, err := dt.Load(ctx, key("1")); err != nil {
			t.Fatal(err)
		}
		if err := dt.Abort(ctx); err != nil {
			t.Fatal(err)
		}
	}
	// Every transaction must have fetched: no inter-transaction caching.
	if got := e.mgr.Stats().MissFetches; got != 3 {
		t.Errorf("miss fetches = %d, want 3 (common store disabled)", got)
	}
}

func TestInvalidationEvictsOtherManagersEntries(t *testing.T) {
	store := sqlstore.New()
	defer store.Close()
	store.Seed(row("1", 1))
	ctx := context.Background()

	mgrA := NewManager(storeapi.Local(store))
	defer mgrA.Close()
	if err := mgrA.Start(ctx); err != nil {
		t.Fatal(err)
	}
	mgrB := NewManager(storeapi.Local(store))
	defer mgrB.Close()
	if err := mgrB.Start(ctx); err != nil {
		t.Fatal(err)
	}

	// Warm A's cache.
	dt, _ := mgrA.Begin(ctx)
	if _, err := dt.Load(ctx, key("1")); err != nil {
		t.Fatal(err)
	}
	_ = dt.Abort(ctx)
	if _, ok := mgrA.CommonStore().Get(key("1")); !ok {
		t.Fatal("A's cache not warm")
	}

	// B commits an update; A must be invalidated by the pushed notice.
	commitOneWrite(t, mgrB)
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, ok := mgrA.CommonStore().Get(key("1")); !ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("A's stale entry never invalidated")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// B's own entry must have been refreshed, not invalidated (the
	// notice for B's own transaction is filtered).
	time.Sleep(20 * time.Millisecond)
	cached, ok := mgrB.CommonStore().Get(key("1"))
	if !ok {
		t.Fatal("B evicted its own freshly committed entry")
	}
	if cached.Version != 2 {
		t.Errorf("B's entry version = %d, want 2", cached.Version)
	}
}

func TestInvalidationDisabledAblation(t *testing.T) {
	store := sqlstore.New()
	defer store.Close()
	store.Seed(row("1", 1))
	ctx := context.Background()

	mgrA := NewManager(storeapi.Local(store), WithInvalidation(false))
	defer mgrA.Close()
	if err := mgrA.Start(ctx); err != nil {
		t.Fatal(err)
	}
	mgrB := NewManager(storeapi.Local(store))
	defer mgrB.Close()

	dt, _ := mgrA.Begin(ctx)
	if _, err := dt.Load(ctx, key("1")); err != nil {
		t.Fatal(err)
	}
	_ = dt.Abort(ctx)
	commitOneWrite(t, mgrB)
	time.Sleep(50 * time.Millisecond)

	// A's entry is stale but present: staleness is discovered at commit
	// validation instead.
	cached, ok := mgrA.CommonStore().Get(key("1"))
	if !ok {
		t.Fatal("entry evicted despite invalidation being disabled")
	}
	if cached.Version != 1 {
		t.Errorf("entry version = %d, want stale 1", cached.Version)
	}
	dt2, _ := mgrA.Begin(ctx)
	m, err := dt2.Load(ctx, key("1"))
	if err != nil {
		t.Fatal(err)
	}
	m.Fields["n"] = memento.Int(9)
	if err := dt2.Store(ctx, m); err != nil {
		t.Fatal(err)
	}
	if err := dt2.Commit(ctx); err == nil {
		t.Fatal("stale write committed without detection")
	}
}

func TestManagerStartIdempotentAndClose(t *testing.T) {
	store := sqlstore.New()
	defer store.Close()
	mgr := NewManager(storeapi.Local(store))
	ctx := context.Background()
	if err := mgr.Start(ctx); err != nil {
		t.Fatal(err)
	}
	if err := mgr.Start(ctx); err != nil {
		t.Fatal(err)
	}
	mgr.Close()
	mgr.Close() // idempotent
}

func TestManagerStats(t *testing.T) {
	e := newEnv(t)
	e.store.Seed(row("1", 1))
	ctx := context.Background()

	dt := e.begin(t)
	if _, err := dt.Load(ctx, key("1")); err != nil {
		t.Fatal(err)
	}
	if err := dt.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	st := e.mgr.Stats()
	if st.Begins != 1 || st.Commits != 1 || st.Loads != 1 || st.MissFetches != 1 {
		t.Errorf("stats = %+v", st)
	}
	if st.Cache.Entries != 1 {
		t.Errorf("cache entries = %d, want 1", st.Cache.Entries)
	}
}

func TestCommonStoreVersionMonotonic(t *testing.T) {
	cs := NewCommonStore()
	cs.Put(memento.Memento{Key: key("1"), Version: 5})
	cs.Put(memento.Memento{Key: key("1"), Version: 3}) // stale put ignored
	got, ok := cs.Get(key("1"))
	if !ok || got.Version != 5 {
		t.Errorf("got %v, want version 5 retained", got)
	}
	cs.Put(memento.Memento{Key: key("1"), Version: 7})
	got, _ = cs.Get(key("1"))
	if got.Version != 7 {
		t.Errorf("newer version not stored: %v", got)
	}
}

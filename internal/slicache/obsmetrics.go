package slicache

import "edgeejb/internal/obs"

// Process-wide obs mirrors of the cache runtime's counters, summed
// across every CommonStore and Manager in the process. The per-instance
// Stats snapshots remain the harness's source of truth; these feed the
// /metrics endpoint and per-phase diffs. Names are documented in
// OBSERVABILITY.md (CI cross-checks them).
var (
	obsHits           = obs.Default.Counter("slicache.hits")
	obsMisses         = obs.Default.Counter("slicache.misses")
	obsInvalidations  = obs.Default.Counter("slicache.invalidations")
	obsRefreshes      = obs.Default.Counter("slicache.refreshes")
	obsEvictions      = obs.Default.Counter("slicache.evictions")
	obsMissFetches    = obs.Default.Counter("slicache.miss_fetches")
	obsCommits        = obs.Default.Counter("slicache.commits")
	obsConflicts      = obs.Default.Counter("slicache.conflicts")
	obsStaleServes    = obs.Default.Counter("slicache.stale_serves")
	obsDegradations   = obs.Default.Counter("slicache.degradations")
	obsResubscribes   = obs.Default.Counter("slicache.resubscribes")
	obsNoticesApplied = obs.Default.Counter("slicache.notices_applied")
)

// Finder-result cache counters: transactional method caching over the
// custom finders (FinderCache). Invalidations count cached result sets
// dropped because a committed write set overlapped their footprint.
var (
	obsFinderHits          = obs.Default.Counter("slicache.finder_hits")
	obsFinderMisses        = obs.Default.Counter("slicache.finder_misses")
	obsFinderInvalidations = obs.Default.Counter("slicache.finder_invalidations")
)

// Per-bean breakdowns of the finder counters, labeled by the finder's
// target table.
var (
	obsFinderHitsBy          = obs.Default.LabeledCounter("slicache.finder_hits", "bean")
	obsFinderMissesBy        = obs.Default.LabeledCounter("slicache.finder_misses", "bean")
	obsFinderInvalidationsBy = obs.Default.LabeledCounter("slicache.finder_invalidations", "bean")
)

// Per-bean breakdowns of the hot counters, labeled by memento table.
// The table set is small and fixed by the schema, so the family cap is
// never a concern in practice.
var (
	obsHitsBy      = obs.Default.LabeledCounter("slicache.hits", "bean")
	obsMissesBy    = obs.Default.LabeledCounter("slicache.misses", "bean")
	obsConflictsBy = obs.Default.LabeledCounter("slicache.conflicts", "bean")
)

// Cache occupancy, summed across every CommonStore in the process
// (each store Add-deltas rather than Sets, so multiple edges in one
// process aggregate).
var (
	obsEntries = obs.Default.Gauge("slicache.entries")
	obsBytes   = obs.Default.Gauge("slicache.bytes")
	// obsFinderEntries counts cached finder result sets across every
	// FinderCache in the process.
	obsFinderEntries = obs.Default.Gauge("slicache.finder_entries")
)

// Forensic latency distributions. Each traced observation also leaves
// an exemplar linking the histogram's extreme to a trace ID.
var (
	// obsConflictReadAge is how stale the loser's read was at abort time:
	// the time between fetching the conflicting entry and failing
	// validation against it.
	obsConflictReadAge = obs.Default.Histogram("slicache.conflict_read_age")
	// obsInvalLatency is the push latency of invalidation notices: origin
	// commit at the store to arrival at this edge.
	obsInvalLatency = obs.Default.Histogram("slicache.invalidation_latency")
	// obsStaleness is the staleness window each notice closed: how long a
	// now-invalidated entry could have been served stale.
	obsStaleness = obs.Default.Histogram("slicache.staleness_window")
	// obsStaleServeAge is the entry age of every degraded-mode stale
	// serve.
	obsStaleServeAge = obs.Default.Histogram("slicache.stale_serve_age")
)

package slicache

import "edgeejb/internal/obs"

// Process-wide obs mirrors of the cache runtime's counters, summed
// across every CommonStore and Manager in the process. The per-instance
// Stats snapshots remain the harness's source of truth; these feed the
// /metrics endpoint and per-phase diffs. Names are documented in
// OBSERVABILITY.md (CI cross-checks them).
var (
	obsHits           = obs.Default.Counter("slicache.hits")
	obsMisses         = obs.Default.Counter("slicache.misses")
	obsInvalidations  = obs.Default.Counter("slicache.invalidations")
	obsRefreshes      = obs.Default.Counter("slicache.refreshes")
	obsEvictions      = obs.Default.Counter("slicache.evictions")
	obsMissFetches    = obs.Default.Counter("slicache.miss_fetches")
	obsCommits        = obs.Default.Counter("slicache.commits")
	obsConflicts      = obs.Default.Counter("slicache.conflicts")
	obsStaleServes    = obs.Default.Counter("slicache.stale_serves")
	obsDegradations   = obs.Default.Counter("slicache.degradations")
	obsResubscribes   = obs.Default.Counter("slicache.resubscribes")
	obsNoticesApplied = obs.Default.Counter("slicache.notices_applied")
)

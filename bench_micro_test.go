package edgeejb_test

import (
	"bytes"
	"context"
	"encoding/gob"
	"fmt"
	"sync"
	"testing"

	"edgeejb/internal/backend"
	"edgeejb/internal/dbwire"
	"edgeejb/internal/lockmgr"
	"edgeejb/internal/memento"
	"edgeejb/internal/slicache"
	"edgeejb/internal/sqlstore"
	"edgeejb/internal/storeapi"
	"edgeejb/internal/trade"
	"edgeejb/internal/wire"
)

// --- Value layer -------------------------------------------------------

func sampleMemento() memento.Memento {
	return (&trade.Account{
		UserID:      "uid-1",
		Balance:     12345.67,
		OpenBalance: 10000,
		LoginCount:  7,
		LastLogin:   "2004-11-15T10:00:00Z",
	}).ToMemento()
}

func BenchmarkMementoClone(b *testing.B) {
	m := sampleMemento()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = m.Clone()
	}
}

func BenchmarkMementoGobEncode(b *testing.B) {
	m := sampleMemento()
	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := enc.Encode(m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQueryMatch(b *testing.B) {
	q := trade.HoldingsByAccount("uid-1")
	m := (&trade.Holding{HoldingID: "h-1", AccountID: "uid-1", Symbol: "s-1"}).ToMemento()
	for i := 0; i < b.N; i++ {
		if !q.Matches(m) {
			b.Fatal("no match")
		}
	}
}

// --- Lock manager ------------------------------------------------------

func BenchmarkLockAcquireRelease(b *testing.B) {
	m := lockmgr.New()
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		owner := lockmgr.Owner(i + 1)
		if err := m.Acquire(ctx, owner, "res", lockmgr.Exclusive); err != nil {
			b.Fatal(err)
		}
		m.Release(owner, "res")
	}
}

// --- Datastore ---------------------------------------------------------

func BenchmarkStoreGetCommit(b *testing.B) {
	store := sqlstore.New()
	defer store.Close()
	store.Seed(sampleMemento())
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tx, err := store.Begin(ctx)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := tx.Get(ctx, trade.TableAccount, "uid-1"); err != nil {
			b.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStorePutCommit(b *testing.B) {
	store := sqlstore.New()
	defer store.Close()
	m := sampleMemento()
	store.Seed(m)
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tx, err := store.Begin(ctx)
		if err != nil {
			b.Fatal(err)
		}
		if err := tx.Put(ctx, m); err != nil {
			b.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStoreApplyCommitSet(b *testing.B) {
	store := sqlstore.New()
	defer store.Close()
	m := sampleMemento()
	store.Seed(m)
	ctx := context.Background()
	key := m.Key
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		v, err := store.CurrentVersion(key)
		if err != nil {
			b.Fatal(err)
		}
		w := m.Clone()
		w.Version = v
		if _, err := store.ApplyCommitSet(ctx, memento.CommitSet{
			Writes: []memento.Memento{w},
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStoreQuery100(b *testing.B) {
	store := sqlstore.New()
	defer store.Close()
	for i := 0; i < 100; i++ {
		h := &trade.Holding{
			HoldingID: fmt.Sprintf("h-%03d", i),
			AccountID: fmt.Sprintf("uid-%d", i%10),
		}
		store.Seed(h.ToMemento())
	}
	ctx := context.Background()
	q := trade.HoldingsByAccount("uid-3")
	conn := storeapi.Local(store)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := conn.AutoQuery(ctx, q)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Mems) != 10 {
			b.Fatalf("rows = %d", len(res.Mems))
		}
	}
}

// --- SLI cache ---------------------------------------------------------

func BenchmarkSLICachedReadCommit(b *testing.B) {
	store := sqlstore.New()
	defer store.Close()
	store.Seed(sampleMemento())
	mgr := slicache.NewManager(storeapi.Local(store), slicache.WithShipping(slicache.WholeSet))
	defer mgr.Close()
	ctx := context.Background()
	key := memento.Key{Table: trade.TableAccount, ID: "uid-1"}

	// Warm the common store.
	dt, _ := mgr.Begin(ctx)
	if _, err := dt.Load(ctx, key); err != nil {
		b.Fatal(err)
	}
	_ = dt.Commit(ctx)

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dt, err := mgr.Begin(ctx)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := dt.Load(ctx, key); err != nil {
			b.Fatal(err)
		}
		if err := dt.Commit(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSLIWriteCommit(b *testing.B) {
	store := sqlstore.New()
	defer store.Close()
	store.Seed(sampleMemento())
	mgr := slicache.NewManager(storeapi.Local(store), slicache.WithShipping(slicache.WholeSet))
	defer mgr.Close()
	ctx := context.Background()
	key := memento.Key{Table: trade.TableAccount, ID: "uid-1"}

	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		dt, err := mgr.Begin(ctx)
		if err != nil {
			b.Fatal(err)
		}
		m, err := dt.Load(ctx, key)
		if err != nil {
			b.Fatal(err)
		}
		m.Fields["balance"] = memento.Float(float64(i))
		if err := dt.Store(ctx, m); err != nil {
			b.Fatal(err)
		}
		if err := dt.Commit(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Wire transport ----------------------------------------------------

// echoReq/echoHandler exercise the bare transport: framing, gob
// streaming, multiplexing and stats, with a trivial handler so the
// numbers isolate transport cost.
type echoReq struct {
	Payload string
}

func (r *echoReq) WireLabel() string { return "echo" }

type echoResp struct {
	Payload string
}

type echoHandler struct{}

func (echoHandler) NewRequest() any { return new(echoReq) }

func (echoHandler) Handle(ctx context.Context, sess *wire.Session, id uint64, req any) any {
	return &echoResp{Payload: req.(*echoReq).Payload}
}

func (echoHandler) Close() {}

func startEchoServer(b *testing.B) *wire.Server {
	b.Helper()
	srv := wire.NewServer(func() wire.ConnHandler { return echoHandler{} })
	if err := srv.Start("127.0.0.1:0"); err != nil {
		b.Fatal(err)
	}
	b.Cleanup(srv.Close)
	return srv
}

// BenchmarkWireRoundTrip is the floor for every remote call in the
// system: one request/response frame pair over loopback on a warm
// connection.
func BenchmarkWireRoundTrip(b *testing.B) {
	srv := startEchoServer(b)
	client := wire.NewClient(srv.Addr())
	defer client.Close()
	ctx := context.Background()
	if err := client.Call(ctx, &echoReq{Payload: "warm"}, new(echoResp)); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp := new(echoResp)
		if err := client.Call(ctx, &echoReq{Payload: "x"}, resp); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWireMultiplexed measures concurrent calls sharing one
// connection — the transport's win over the seed's lock-the-socket
// design.
func BenchmarkWireMultiplexed(b *testing.B) {
	srv := startEchoServer(b)
	client := wire.NewClient(srv.Addr(), wire.WithMaxConns(1))
	defer client.Close()
	ctx := context.Background()
	if err := client.Call(ctx, &echoReq{Payload: "warm"}, new(echoResp)); err != nil {
		b.Fatal(err)
	}
	const workers = 16
	b.ReportAllocs()
	b.ResetTimer()
	var wg sync.WaitGroup
	each := b.N / workers
	if each == 0 {
		each = 1
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				resp := new(echoResp)
				if err := client.Call(ctx, &echoReq{Payload: "x"}, resp); err != nil {
					b.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// --- Wire protocol -----------------------------------------------------

func BenchmarkWireAutoGet(b *testing.B) {
	store := sqlstore.New()
	defer store.Close()
	store.Seed(sampleMemento())
	srv := dbwire.NewServer(storeapi.Local(store))
	if err := srv.Start("127.0.0.1:0"); err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	client := dbwire.Dial(srv.Addr())
	defer client.Close()
	ctx := context.Background()
	if err := client.Ping(ctx); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := client.AutoGet(ctx, trade.TableAccount, "uid-1"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWireApplyCommitSet(b *testing.B) {
	store := sqlstore.New()
	defer store.Close()
	m := sampleMemento()
	store.Seed(m)
	srv := dbwire.NewServer(storeapi.Local(store))
	if err := srv.Start("127.0.0.1:0"); err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	client := dbwire.Dial(srv.Addr())
	defer client.Close()
	ctx := context.Background()
	version := uint64(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := m.Clone()
		w.Version = version
		res, err := client.ApplyCommitSet(ctx, memento.CommitSet{Writes: []memento.Memento{w}})
		if err != nil {
			b.Fatal(err)
		}
		version = res.NewVersions[m.Key]
	}
}

// BenchmarkBackendCommit measures the full split-servers commit path:
// edge -> back-end (one round trip) -> database (per-statement).
func BenchmarkBackendCommit(b *testing.B) {
	store := sqlstore.New()
	defer store.Close()
	m := sampleMemento()
	store.Seed(m)
	dbSrv := dbwire.NewServer(storeapi.Local(store))
	if err := dbSrv.Start("127.0.0.1:0"); err != nil {
		b.Fatal(err)
	}
	defer dbSrv.Close()
	dbClient := dbwire.Dial(dbSrv.Addr())
	defer dbClient.Close()
	be := backend.NewServer(dbClient)
	if err := be.Start("127.0.0.1:0"); err != nil {
		b.Fatal(err)
	}
	defer be.Close()
	edge := dbwire.Dial(be.Addr())
	defer edge.Close()
	ctx := context.Background()
	version := uint64(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := m.Clone()
		w.Version = version
		res, err := edge.ApplyCommitSet(ctx, memento.CommitSet{Writes: []memento.Memento{w}})
		if err != nil {
			b.Fatal(err)
		}
		version = res.NewVersions[m.Key]
	}
}

func BenchmarkQueryIndexedVsScan(b *testing.B) {
	const rows = 2000
	seedStore := func(withIndex bool) *sqlstore.Store {
		store := sqlstore.New()
		if withIndex {
			if err := store.CreateIndex(trade.TableHolding, "accountID"); err != nil {
				b.Fatal(err)
			}
			if err := store.CreateIndex(trade.TableHolding, "quantity"); err != nil {
				b.Fatal(err)
			}
		}
		for i := 0; i < rows; i++ {
			h := &trade.Holding{
				HoldingID: fmt.Sprintf("h-%04d", i),
				AccountID: fmt.Sprintf("uid-%d", i%100),
				Quantity:  float64(i % 50),
			}
			store.Seed(h.ToMemento())
		}
		return store
	}
	ctx := context.Background()
	eqQuery := trade.HoldingsByAccount("uid-42")
	rangeQuery := memento.Query{
		Table: trade.TableHolding,
		Where: []memento.Predicate{{Field: "quantity", Op: memento.OpGe, Value: memento.Float(45)}},
	}

	run := func(b *testing.B, store *sqlstore.Store, q memento.Query, wantRows int) {
		conn := storeapi.Local(store)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			got, err := conn.AutoQuery(ctx, q)
			if err != nil {
				b.Fatal(err)
			}
			if len(got.Mems) != wantRows {
				b.Fatalf("rows = %d, want %d", len(got.Mems), wantRows)
			}
		}
	}
	b.Run("equality-scan", func(b *testing.B) { run(b, seedStore(false), eqQuery, rows/100) })
	b.Run("equality-indexed", func(b *testing.B) { run(b, seedStore(true), eqQuery, rows/100) })
	b.Run("range-scan", func(b *testing.B) { run(b, seedStore(false), rangeQuery, rows/10) })
	b.Run("range-indexed", func(b *testing.B) { run(b, seedStore(true), rangeQuery, rows/10) })
}

// Relaxedreads: the consistency spectrum on one edge server.
//
// The paper defends strict ACID semantics at the edge and shows the
// price: every transaction — even a read-only page view — pays at least
// one high-latency validation round trip (§4.4). Its related-work
// section (§1.4) contrasts middle-tier database caches (DBCache,
// DBProxy) that relax exactly this: reads carry "time-based guarantees"
// instead.
//
// This example runs the same read-heavy workload on a split-servers edge
// under three configurations and prints what each costs and what each
// risks:
//
//  1. strict ACID (the paper's semantics): every read validated;
//  2. time-bounded reads (5s): fresh cached reads skip validation;
//  3. strict ACID with a tiny LRU cache: correctness intact, but the
//     working set no longer fits, so misses refetch across the delay.
//
// Run with: go run ./examples/relaxedreads [-delay 10ms]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"time"

	"edgeejb/internal/harness"
	"edgeejb/internal/slicache"
	"edgeejb/internal/trade"
)

func main() {
	delay := flag.Duration("delay", 10*time.Millisecond, "one-way delay between edge and back-end")
	flag.Parse()
	if err := run(*delay); err != nil {
		log.Fatal(err)
	}
}

func run(delay time.Duration) error {
	type config struct {
		name string
		opts []slicache.ManagerOption
	}
	configs := []config{
		{name: "strict ACID (paper)"},
		{name: "time-bounded reads (5s)", opts: []slicache.ManagerOption{
			slicache.WithTimeBoundedReads(5 * time.Second),
		}},
		{name: "strict + LRU capacity 8", opts: []slicache.ManagerOption{
			slicache.WithCacheCapacity(8),
		}},
	}

	fmt.Printf("read-heavy session on ES/RBES with %v one-way delay\n\n", delay)
	fmt.Printf("%-28s %14s %12s %14s %10s\n",
		"configuration", "mean ms/read", "commits", "miss fetches", "skipped")

	for _, cfg := range configs {
		if err := measure(cfg.name, delay, cfg.opts); err != nil {
			return err
		}
	}

	fmt.Println("\nstrict mode buys linearizable-at-commit reads with one round trip per")
	fmt.Println("transaction; the time bound removes that round trip for warm reads at")
	fmt.Println("the cost of possibly serving values up to 5s stale; a too-small cache")
	fmt.Println("keeps strict semantics but pays the delay again on every eviction.")
	return nil
}

func measure(name string, delay time.Duration, opts []slicache.ManagerOption) error {
	topo, err := harness.Build(harness.Options{
		Arch:         harness.ESRBES,
		Algo:         harness.AlgCachedEJB,
		OneWayDelay:  delay,
		Populate:     trade.PopulateConfig{Users: 12, Symbols: 24, HoldingsPerUser: 2},
		CacheOptions: opts,
	})
	if err != nil {
		return err
	}
	defer topo.Close()

	ctx := context.Background()
	svc := topo.Services[0]

	// A browse-only loop: home pages and quotes across users/symbols.
	const reads = 60
	begin := time.Now()
	for i := 0; i < reads; i++ {
		if _, err := svc.Home(ctx, trade.UserID(i%12)); err != nil {
			return fmt.Errorf("%s: home: %w", name, err)
		}
		if _, err := svc.GetQuote(ctx, trade.SymbolID(i%24)); err != nil {
			return fmt.Errorf("%s: quote: %w", name, err)
		}
	}
	elapsed := time.Since(begin)

	st := topo.Managers[0].Stats()
	fmt.Printf("%-28s %14.2f %12d %14d %10d\n",
		name,
		float64(elapsed)/float64(2*reads)/float64(time.Millisecond),
		st.Commits, st.MissFetches, st.BoundedReadsSkipped)
	return nil
}

// Quickstart: cache-enabling a transactional component in a few lines.
//
// It builds the smallest possible deployment — one in-process datastore,
// one SLI cache manager — defines a bank-account entity, and shows the
// three behaviors that make the framework tick:
//
//  1. transparent caching: the second read of an account costs no
//     datastore access;
//  2. optimistic concurrency: two transactions updating the same account
//     conflict, the loser aborts and retries;
//  3. identical programming model: the same code runs uncached by
//     swapping the resource manager.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"edgeejb/internal/component"
	"edgeejb/internal/memento"
	"edgeejb/internal/slicache"
	"edgeejb/internal/sqlstore"
	"edgeejb/internal/storeapi"
)

// BankAccount is an entity bean: identity plus memento-serializable
// state.
type BankAccount struct {
	ID      string
	Owner   string
	Balance int64
}

func (a *BankAccount) PrimaryKey() memento.Key {
	return memento.Key{Table: "bank", ID: a.ID}
}

func (a *BankAccount) ToMemento() memento.Memento {
	return memento.Memento{
		Key: a.PrimaryKey(),
		Fields: memento.Fields{
			"owner":   memento.String(a.Owner),
			"balance": memento.Int(a.Balance),
		},
	}
}

func (a *BankAccount) LoadMemento(m memento.Memento) error {
	a.ID = m.Key.ID
	a.Owner = m.Fields["owner"].Str
	a.Balance = m.Fields["balance"].Int
	return nil
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx := context.Background()

	// The persistent datastore (the paper's DB2 stand-in).
	store := sqlstore.New()
	defer store.Close()

	// A cache-enhanced resource manager over it. WithShipping selects
	// the combined-servers commit path; storeapi.Local would be a
	// dbwire.Dial(...) in a real edge deployment.
	conn := storeapi.NewCountingConn(storeapi.Local(store))
	mgr := slicache.NewManager(conn, slicache.WithShipping(slicache.PerImage))
	defer mgr.Close()
	if err := mgr.Start(ctx); err != nil {
		return err
	}

	registry, err := component.NewRegistry(component.Descriptor{
		Table: "bank",
		New:   func() component.Entity { return &BankAccount{} },
	})
	if err != nil {
		return err
	}
	container := component.NewContainer(registry, mgr)

	// 1. Create an account.
	err = container.Execute(ctx, func(tx *component.Tx) error {
		return tx.Create(&BankAccount{ID: "acct-1", Owner: "ada", Balance: 100})
	})
	if err != nil {
		return err
	}
	fmt.Println("created acct-1 with balance 100")

	// 2. Transparent caching: the read below is served from the common
	// transient store — no cache-miss fetch reaches the datastore.
	missesBefore := mgr.Stats().MissFetches
	err = container.Execute(ctx, func(tx *component.Tx) error {
		acct := &BankAccount{ID: "acct-1"}
		if err := tx.Find(acct); err != nil {
			return err
		}
		fmt.Printf("read %s: owner=%s balance=%d\n", acct.ID, acct.Owner, acct.Balance)
		return nil
	})
	if err != nil {
		return err
	}
	fmt.Printf("cache hit: %d miss fetches during the read (commit validation still runs; %d statements total so far)\n",
		mgr.Stats().MissFetches-missesBefore, conn.Ops())

	// 3. Optimistic concurrency: a second cache manager (another edge
	// server) updates the account behind our back; our stale update
	// aborts with a conflict, and ExecuteRetry wins on the second try.
	other := slicache.NewManager(storeapi.Local(store))
	defer other.Close()
	otherContainer := component.NewContainer(registry, other)

	sabotaged := false
	err = container.ExecuteRetry(ctx, 3, func(tx *component.Tx) error {
		acct := &BankAccount{ID: "acct-1"}
		if err := tx.Find(acct); err != nil {
			return err
		}
		if !sabotaged {
			sabotaged = true
			// Concurrent writer on the other edge server.
			if err := otherContainer.Execute(ctx, func(tx2 *component.Tx) error {
				a2 := &BankAccount{ID: "acct-1"}
				if err := tx2.Find(a2); err != nil {
					return err
				}
				a2.Balance += 1000
				return tx2.Update(a2)
			}); err != nil {
				return err
			}
			fmt.Println("another edge server deposited 1000 concurrently...")
		}
		acct.Balance -= 30
		return tx.Update(acct)
	})
	if err != nil {
		return err
	}
	fmt.Printf("conflicts detected and retried: %d\n", mgr.Stats().Conflicts)

	// Final state: both updates applied exactly once.
	return container.Execute(ctx, func(tx *component.Tx) error {
		acct := &BankAccount{ID: "acct-1"}
		if err := tx.Find(acct); err != nil {
			return err
		}
		fmt.Printf("final balance = %d (100 + 1000 - 30)\n", acct.Balance)
		if acct.Balance != 1070 {
			return fmt.Errorf("unexpected balance %d", acct.Balance)
		}
		return nil
	})
}

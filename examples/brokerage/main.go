// Brokerage: a full Trade deployment on the split-servers (ES/RBES)
// architecture — database server, back-end server, delay proxy, and a
// cache-enhanced edge application server, all on loopback TCP — driven
// by a web client running a realistic brokerage session.
//
// It prints each interaction's latency so the effect of the injected
// wide-area delay is visible: with the SLI cache, browse actions cost
// one validation round trip and trading actions a single whole-set
// commit, regardless of how many beans they touch.
//
// Run with: go run ./examples/brokerage [-delay 20ms]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"time"

	"edgeejb/internal/harness"
	"edgeejb/internal/trade"
)

func main() {
	delay := flag.Duration("delay", 20*time.Millisecond, "one-way delay between edge and back-end")
	flag.Parse()
	if err := run(*delay); err != nil {
		log.Fatal(err)
	}
}

func run(delay time.Duration) error {
	topo, err := harness.Build(harness.Options{
		Arch:        harness.ESRBES,
		Algo:        harness.AlgCachedEJB,
		OneWayDelay: delay,
		Populate:    trade.PopulateConfig{Users: 10, Symbols: 20, HoldingsPerUser: 3},
	})
	if err != nil {
		return err
	}
	defer topo.Close()
	fmt.Printf("ES/RBES topology up: edge server %s, back-end behind a %v one-way delay\n\n",
		topo.AppServers[0].Addr(), delay)

	client := topo.NewWebClient()
	defer client.Close()
	ctx := context.Background()
	user := trade.UserID(3)

	session := []trade.Step{
		{Action: trade.ActionLogin, UserID: user, SessionID: "demo-session"},
		{Action: trade.ActionHome, UserID: user},
		{Action: trade.ActionQuote, UserID: user, Symbol: trade.SymbolID(7)},
		{Action: trade.ActionPortfolio, UserID: user},
		{Action: trade.ActionBuy, UserID: user, Symbol: trade.SymbolID(7), Quantity: 5},
		{Action: trade.ActionPortfolio, UserID: user},
		{Action: trade.ActionSell, UserID: user},
		{Action: trade.ActionAccount, UserID: user},
		{Action: trade.ActionLogout, UserID: user},
	}
	for _, step := range session {
		begin := time.Now()
		resp, err := client.DoStep(ctx, step)
		if err != nil {
			return fmt.Errorf("%s: %w", step.Action, err)
		}
		status := "ok"
		if !resp.OK {
			status = "FAILED: " + resp.Err
		}
		fmt.Printf("%-14s %8.1f ms   %6d bytes   %s\n",
			step.Action, float64(time.Since(begin))/float64(time.Millisecond), len(resp.Body), status)
	}

	mgr := topo.Managers[0]
	st := mgr.Stats()
	fmt.Printf("\nedge cache: hits=%d misses=%d commits=%d conflicts=%d entries=%d\n",
		st.Cache.Hits, st.Cache.Misses, st.Commits, st.Conflicts, st.Cache.Entries)
	fmt.Printf("shared path (edge <-> back-end): %d bytes over %d connections\n",
		topo.SharedPathCounter().Total(), topo.SharedPathCounter().Conns())
	return nil
}

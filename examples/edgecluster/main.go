// Edgecluster: two cache-enhanced edge servers sharing one back-end —
// the deployment the paper's Figure 4 draws. It demonstrates the two
// properties that make a cluster of edge caches a "single logical
// image":
//
//  1. invalidation: an update committed through edge A evicts the stale
//     entry in edge B's common store, so B's next read is fresh;
//  2. conflict detection: when A and B race on the same account, exactly
//     one commit wins and the loser aborts with a conflict.
//
// It finishes with a bandwidth comparison of the shared path against a
// Clients/RAS deployment serving the same session, reproducing the
// Figure 8 effect in miniature.
//
// Run with: go run ./examples/edgecluster
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"time"

	"edgeejb/internal/component"
	"edgeejb/internal/harness"
	"edgeejb/internal/memento"
	"edgeejb/internal/trade"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx := context.Background()
	topo, err := harness.Build(harness.Options{
		Arch:        harness.ESRBES,
		Algo:        harness.AlgCachedEJB,
		EdgeServers: 2,
		OneWayDelay: 5 * time.Millisecond,
		Populate:    trade.PopulateConfig{Users: 6, Symbols: 12, HoldingsPerUser: 2},
	})
	if err != nil {
		return err
	}
	defer topo.Close()
	fmt.Println("two edge servers sharing one back-end (5ms one-way delay)")

	user := trade.UserID(1)
	edgeA, err := topo.NewWebClientFor(0)
	if err != nil {
		return err
	}
	defer edgeA.Close()
	edgeB, err := topo.NewWebClientFor(1)
	if err != nil {
		return err
	}
	defer edgeB.Close()

	// --- 1. Invalidation across the cluster ---------------------------
	if resp, err := edgeB.DoStep(ctx, trade.Step{Action: trade.ActionAccount, UserID: user}); err != nil || !resp.OK {
		return fmt.Errorf("warm edge B: %v", err)
	}
	fmt.Println("\n[invalidation] edge B cached the user's profile")
	if resp, err := edgeA.DoStep(ctx, trade.Step{
		Action: trade.ActionAccountUpdate, UserID: user,
		Address: "7 Cluster Road", Email: "cluster@example.test",
	}); err != nil || !resp.OK {
		return fmt.Errorf("update via edge A: %v", err)
	}
	fmt.Println("[invalidation] edge A committed a profile update")
	deadline := time.Now().Add(3 * time.Second)
	for {
		resp, err := edgeB.DoStep(ctx, trade.Step{Action: trade.ActionAccount, UserID: user})
		if err != nil {
			return err
		}
		if resp.OK && containsAddr(resp.Body) {
			fmt.Println("[invalidation] edge B now serves the fresh profile (stale entry evicted)")
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("edge B never saw the update")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// --- 2. Racing commits conflict -----------------------------------
	// Drive the two cache managers directly so both transactions read
	// the same account version before either commits.
	mgrA, mgrB := topo.Managers[0], topo.Managers[1]
	dtA, err := mgrA.Begin(ctx)
	if err != nil {
		return err
	}
	dtB, err := mgrB.Begin(ctx)
	if err != nil {
		return err
	}
	acctKey := (&trade.Account{UserID: user}).PrimaryKey()
	mA, err := dtA.Load(ctx, acctKey)
	if err != nil {
		return err
	}
	mB, err := dtB.Load(ctx, acctKey)
	if err != nil {
		return err
	}
	mA.Fields["balance"] = memento.Float(mA.Fields["balance"].F + 100)
	mB.Fields["balance"] = memento.Float(mB.Fields["balance"].F + 200)
	if err := dtA.Store(ctx, mA); err != nil {
		return err
	}
	if err := dtB.Store(ctx, mB); err != nil {
		return err
	}
	errA := dtA.Commit(ctx)
	errB := dtB.Commit(ctx)
	fmt.Printf("\n[conflict] edge A commit: %v\n", errOrOK(errA))
	fmt.Printf("[conflict] edge B commit: %v\n", errOrOK(errB))
	if (errA == nil) == (errB == nil) {
		return fmt.Errorf("expected exactly one winner, got A=%v B=%v", errA, errB)
	}
	if !component.IsConflict(firstErr(errA, errB)) {
		return fmt.Errorf("loser did not fail with a conflict: %v", firstErr(errA, errB))
	}
	fmt.Println("[conflict] exactly one edge won; the loser aborted with a version conflict")

	// --- 3. Bandwidth comparison --------------------------------------
	edgeBytes, err := bytesPerInteraction(ctx, topo)
	if err != nil {
		return err
	}
	rasTopo, err := harness.Build(harness.Options{
		Arch:     harness.ClientsRAS,
		Algo:     harness.AlgCachedEJB,
		Populate: trade.PopulateConfig{Users: 6, Symbols: 12, HoldingsPerUser: 2},
	})
	if err != nil {
		return err
	}
	defer rasTopo.Close()
	rasBytes, err := bytesPerInteraction(ctx, rasTopo)
	if err != nil {
		return err
	}
	fmt.Printf("\n[bandwidth] shared-path bytes per interaction: ES/RBES %.0f vs Clients/RAS %.0f (%.1fx)\n",
		edgeBytes, rasBytes, rasBytes/edgeBytes)
	fmt.Println("[bandwidth] the edge cluster ships data, not presentation — the Figure 8 effect")
	return nil
}

func bytesPerInteraction(ctx context.Context, topo *harness.Topology) (float64, error) {
	client := topo.NewWebClient()
	defer client.Close()
	user := trade.UserID(2)
	steps := []trade.Step{
		{Action: trade.ActionLogin, UserID: user, SessionID: "bw"},
		{Action: trade.ActionHome, UserID: user},
		{Action: trade.ActionQuote, UserID: user, Symbol: trade.SymbolID(3)},
		{Action: trade.ActionPortfolio, UserID: user},
		{Action: trade.ActionLogout, UserID: user},
	}
	counter := topo.SharedPathCounter()
	before := counter.Total()
	for _, s := range steps {
		resp, err := client.DoStep(ctx, s)
		if err != nil {
			return 0, err
		}
		if !resp.OK {
			return 0, fmt.Errorf("%s failed: %s", s.Action, resp.Err)
		}
	}
	return float64(counter.Total()-before) / float64(len(steps)), nil
}

func containsAddr(body []byte) bool {
	return bytes.Contains(body, []byte("7 Cluster Road"))
}

func errOrOK(err error) string {
	if err == nil {
		return "ok"
	}
	return err.Error()
}

func firstErr(errs ...error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
